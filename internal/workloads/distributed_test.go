package workloads

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/backend"
	"repro/internal/trace"
	"repro/internal/vclock"
)

func testDistSpec() DistributedSpec {
	return DistributedSpec{
		Actors: 2, Algo: "DDPG", Env: "Hopper", Model: backend.EagerPyTorch,
		TotalSteps: 150, Seed: 7,
	}
}

// TestRunDistributedDeterminism: the whole multi-host run is a pure
// function of the spec — every host's events, metadata, and injected skew
// reproduce exactly.
func TestRunDistributedDeterminism(t *testing.T) {
	a, err := RunDistributed(testDistSpec(), trace.Full())
	if err != nil {
		t.Fatalf("RunDistributed: %v", err)
	}
	b, err := RunDistributed(testDistSpec(), trace.Full())
	if err != nil {
		t.Fatalf("RunDistributed (repeat): %v", err)
	}
	if len(a) != len(b) {
		t.Fatalf("host counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Host != b[i].Host || a[i].Skew != b[i].Skew {
			t.Fatalf("host %d identity drifted: %q/%v vs %q/%v", i, a[i].Host, a[i].Skew, b[i].Host, b[i].Skew)
		}
		if !reflect.DeepEqual(a[i].Trace.Events, b[i].Trace.Events) {
			t.Errorf("host %s: events differ between identical runs", a[i].Host)
		}
		if !reflect.DeepEqual(a[i].Trace.Meta, b[i].Trace.Meta) {
			t.Errorf("host %s: metadata differs between identical runs", a[i].Host)
		}
	}
}

func TestRunDistributedShape(t *testing.T) {
	spec := testDistSpec()
	runs, err := RunDistributed(spec, trace.Full())
	if err != nil {
		t.Fatalf("RunDistributed: %v", err)
	}
	if len(runs) != spec.Actors+1 {
		t.Fatalf("got %d hosts, want %d", len(runs), spec.Actors+1)
	}
	wantHosts := []string{LearnerHost, ActorHost(0), ActorHost(1)}
	for i, r := range runs {
		if r.Host != wantHosts[i] {
			t.Errorf("host %d = %q, want %q", i, r.Host, wantHosts[i])
		}
		if r.Trace.Meta.Host != r.Host {
			t.Errorf("host %s: Meta.Host = %q", r.Host, r.Trace.Meta.Host)
		}
		if r.Trace.Meta.Workload != spec.Name() {
			t.Errorf("host %s: workload %q, want %q", r.Host, r.Trace.Meta.Workload, spec.Name())
		}
		if r.Skew < 0 || r.Skew >= DefaultMaxSkew {
			t.Errorf("host %s: skew %v outside [0, %v)", r.Host, r.Skew, DefaultMaxSkew)
		}
		if err := r.Trace.Validate(); err != nil {
			t.Errorf("host %s: invalid trace: %v", r.Host, err)
		}
		var sends, recvs int
		for _, e := range r.Trace.Events {
			if e.Cat != trace.CatNetwork {
				continue
			}
			switch {
			case strings.HasPrefix(e.Name, "net.send:"):
				sends++
			case strings.HasPrefix(e.Name, "net.recv:"):
				recvs++
			}
		}
		if sends == 0 || recvs == 0 {
			t.Errorf("host %s: %d sends / %d recvs — every host must both send and receive", r.Host, sends, recvs)
		}
	}
	// Actors do environment steps; the learner does none itself.
	learnerSteps := 0
	for _, e := range runs[0].Trace.Events {
		if e.Cat == trace.CatSimulator && strings.HasSuffix(e.Name, ".step") {
			learnerSteps++
		}
	}
	if learnerSteps != 0 {
		t.Errorf("learner stepped the environment %d times; steps belong to actors", learnerSteps)
	}
	for _, r := range runs[1:] {
		actorSteps := 0
		for _, e := range r.Trace.Events {
			if e.Cat == trace.CatSimulator && strings.HasSuffix(e.Name, ".step") {
				actorSteps++
			}
		}
		if actorSteps != spec.TotalSteps {
			t.Errorf("host %s: %d env steps, want %d", r.Host, actorSteps, spec.TotalSteps)
		}
	}
}

func TestRunDistributedValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*DistributedSpec)
		want string
	}{
		{"zero actors", func(s *DistributedSpec) { s.Actors = 0 }, "Actors"},
		{"too many actors", func(s *DistributedSpec) { s.Actors = MaxActors + 1 }, "Actors"},
		{"zero steps", func(s *DistributedSpec) { s.TotalSteps = 0 }, "TotalSteps"},
		{"on-policy algorithm", func(s *DistributedSpec) { s.Algo = "PPO2" }, "on-policy"},
		{"unknown algorithm", func(s *DistributedSpec) { s.Algo = "ZZZ" }, ""},
		{"unknown env", func(s *DistributedSpec) { s.Env = "Mars" }, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec := testDistSpec()
			tc.mut(&spec)
			_, err := RunDistributed(spec, trace.Full())
			if err == nil {
				t.Fatal("invalid spec accepted")
			}
			if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestRunDistributedSkewBound: a custom MaxSkew caps the injected origins.
func TestRunDistributedSkewBound(t *testing.T) {
	spec := testDistSpec()
	spec.MaxSkew = 50 * vclock.Microsecond
	runs, err := RunDistributed(spec, trace.Full())
	if err != nil {
		t.Fatalf("RunDistributed: %v", err)
	}
	for _, r := range runs {
		if r.Skew < 0 || r.Skew >= spec.MaxSkew {
			t.Errorf("host %s: skew %v outside [0, %v)", r.Host, r.Skew, spec.MaxSkew)
		}
	}
}
