package workloads

import (
	"os"
	"testing"

	"repro/internal/backend"
	"repro/internal/trace"
)

// sweepSpecs lists one runnable configuration per algorithm (every Spec
// shape the harness supports), sized for a fast sweep.
var sweepSpecs = []Spec{
	{Algo: "DQN", Env: "Pong", Model: backend.Graph, TotalSteps: 200},
	{Algo: "DDPG", Env: "Walker2D", Model: backend.Graph, TotalSteps: 200},
	{Algo: "TD3", Env: "Walker2D", Model: backend.Autograph, TotalSteps: 200, CollectStepsOverride: 100},
	{Algo: "SAC", Env: "Walker2D", Model: backend.EagerPyTorch, TotalSteps: 200},
	{Algo: "A2C", Env: "Walker2D", Model: backend.Graph, TotalSteps: 100},
	{Algo: "PPO2", Env: "Hopper", Model: backend.Graph, TotalSteps: 128},
	{Algo: "PPO2", Env: "Pong", Model: backend.EagerTF, TotalSteps: 128},
}

var sweepSeeds = []int64{42, 123, 456}

// writeTraceDir runs the spec and spills its trace through the chunked
// writer, returning the directory digest — the byte identity of the
// on-disk trace.
func writeTraceDir(t *testing.T, spec Spec) (dir, digest string, events int) {
	t.Helper()
	stats, err := Run(spec, trace.Uninstrumented())
	if err != nil {
		t.Fatalf("Run(%s seed %d): %v", spec.Name(), spec.Seed, err)
	}
	dir = t.TempDir()
	w, err := trace.NewWriter(dir, 1<<15)
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	w.Append(stats.Trace.Events...)
	if err := w.Close(stats.Trace.Meta); err != nil {
		t.Fatalf("Writer.Close: %v", err)
	}
	d, err := trace.DirDigest(dir)
	if err != nil {
		t.Fatalf("DirDigest: %v", err)
	}
	return dir, d, len(stats.Trace.Events)
}

// The determinism foundation the hypothesis harness's statistical rules
// rest on (DESIGN.md §10): for every workload Spec and seed, the written
// trace decodes, is non-empty, and a same-seed replay is byte-identical on
// disk. A different seed must produce different bytes.
func TestSeedSweepDeterminism(t *testing.T) {
	for _, base := range sweepSpecs {
		base := base
		t.Run(base.Name(), func(t *testing.T) {
			var digests []string
			for _, seed := range sweepSeeds {
				spec := base
				spec.Seed = seed

				dir, first, events := writeTraceDir(t, spec)
				if events == 0 {
					t.Fatalf("seed %d: empty trace", seed)
				}

				// The directory decodes: every chunk, via the
				// streaming reader, yields every event back.
				r, err := trace.OpenDir(dir)
				if err != nil {
					t.Fatalf("seed %d: OpenDir: %v", seed, err)
				}
				decoded := 0
				var buf []trace.Event
				for i := 0; i < r.NumChunks(); i++ {
					buf, err = r.ReadChunk(i, buf[:0])
					if err != nil {
						t.Fatalf("seed %d: ReadChunk(%d): %v", seed, i, err)
					}
					decoded += len(buf)
				}
				if decoded != events {
					t.Fatalf("seed %d: decoded %d events, ran %d", seed, decoded, events)
				}

				// Same seed, fresh run: byte-identical directory.
				_, second, _ := writeTraceDir(t, spec)
				if first != second {
					t.Fatalf("seed %d: same-seed replays differ: %s vs %s", seed, first, second)
				}
				digests = append(digests, first)
			}
			// Different seeds must not alias.
			seen := map[string]int64{}
			for i, d := range digests {
				if prev, ok := seen[d]; ok {
					t.Fatalf("seeds %d and %d produced identical traces", prev, sweepSeeds[i])
				}
				seen[d] = sweepSeeds[i]
			}
		})
	}
}

// A trace dir that decodes through ReadDir (the materializing path) matches
// what the run produced, so both analysis paths see the same bytes.
func TestSeedSweepReadDirRoundTrip(t *testing.T) {
	spec := Spec{Algo: "DDPG", Env: "Walker2D", Model: backend.Graph, TotalSteps: 150, Seed: 99}
	stats, err := Run(spec, trace.Uninstrumented())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	dir := t.TempDir()
	w, err := trace.NewWriter(dir, 1<<15)
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	w.Append(stats.Trace.Events...)
	if err := w.Close(stats.Trace.Meta); err != nil {
		t.Fatalf("Close: %v", err)
	}
	got, err := trace.ReadDir(dir)
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	if len(got.Events) != len(stats.Trace.Events) {
		t.Fatalf("round trip lost events: %d vs %d", len(got.Events), len(stats.Trace.Events))
	}
	if got.Meta.Workload != spec.Name() {
		t.Fatalf("meta workload %q, want %q", got.Meta.Workload, spec.Name())
	}
	if _, err := os.Stat(dir); err != nil {
		t.Fatalf("trace dir: %v", err)
	}
}
