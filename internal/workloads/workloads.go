// Package workloads composes an RL algorithm, a simulator, and an ML
// backend execution model into the annotated training loop every case study
// in the paper profiles:
//
//	for each iteration:
//	    collect: [inference → simulation] × CollectSteps
//	    update:  [backpropagation] × UpdatesPerCollect
//
// The three operation annotations — inference, simulation, backpropagation —
// are exactly the paper's Figure 4/5/7 legends.
package workloads

import (
	"fmt"

	"repro/internal/backend"
	"repro/internal/calib"
	"repro/internal/cuda"
	"repro/internal/gpu"
	"repro/internal/profiler"
	"repro/internal/rl"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/vclock"
)

// Operation annotation labels (the paper's training-loop stages).
const (
	OpInference       = "inference"
	OpSimulation      = "simulation"
	OpBackpropagation = "backpropagation"
)

// stepGlueCost is the per-step high-level driver glue inside the data
// collection loop (action unboxing, observation conversion).
var stepGlueCost = vclock.Jittered(8*vclock.Microsecond, 0.25)

// AlgorithmNames lists the implemented algorithms.
var AlgorithmNames = []string{"DQN", "DDPG", "TD3", "SAC", "A2C", "PPO2"}

// Spec describes one training workload.
type Spec struct {
	// Algo is one of AlgorithmNames.
	Algo string
	// Env is one of sim.SurveyNames.
	Env string
	// Model is the ML backend execution model (Table 1).
	Model backend.ExecModel
	// TotalSteps is the number of environment steps to run; iterations
	// are derived from the algorithm's CollectSteps.
	TotalSteps int
	// Seed drives every stochastic component.
	Seed int64
	// CollectStepsOverride changes the algorithm's
	// consecutive-simulator-steps hyperparameter (paper F.5's DDPG
	// 100→1000 experiment).
	CollectStepsOverride int
}

// Name labels the workload in traces and reports.
func (s Spec) Name() string {
	return fmt.Sprintf("%s-%s-%s", s.Algo, s.Env, s.Model)
}

// newAgent builds the algorithm, applying the framework-implementation
// quirks the paper attributes to specific codebases: stable-baselines
// (Graph) DDPG uses the MPI-friendly CPU Adam and separate target-update
// session calls (paper F.4).
func newAgent(spec Spec, b *backend.Backend, env sim.Env) (rl.Agent, error) {
	cfg := rl.Config{
		Backend:              b,
		ObsDim:               env.ObsDim(),
		ActDim:               env.ActDim(),
		Discrete:             env.Discrete(),
		Seed:                 spec.Seed + 17,
		CollectStepsOverride: spec.CollectStepsOverride,
	}
	if spec.Algo == "DDPG" && spec.Model == backend.Graph {
		cfg.UseMPIAdam = true
		cfg.SeparateTargetCalls = true
	}
	switch spec.Algo {
	case "DQN":
		if !env.Discrete() {
			return nil, fmt.Errorf("workloads: DQN needs a discrete env, %s is continuous", env.Name())
		}
		return rl.NewDQN(cfg), nil
	case "DDPG":
		return rl.NewDDPG(cfg), nil
	case "TD3":
		return rl.NewTD3(cfg), nil
	case "SAC":
		return rl.NewSAC(cfg), nil
	case "A2C":
		return rl.NewA2C(cfg), nil
	case "PPO2":
		return rl.NewPPO2(cfg), nil
	default:
		return nil, fmt.Errorf("workloads: unknown algorithm %q", spec.Algo)
	}
}

// Run executes the workload once under the given profiler feature flags and
// returns its run statistics (trace, totals, overhead counts).
func Run(spec Spec, flags trace.FeatureFlags) (*calib.RunStats, error) {
	if spec.TotalSteps <= 0 {
		return nil, fmt.Errorf("workloads: TotalSteps must be positive")
	}
	p := profiler.New(profiler.Options{
		Workload: spec.Name(),
		Flags:    flags,
		Seed:     spec.Seed,
	})
	dev := gpu.NewDevice(-1)
	sess := p.NewProcess("trainer", -1, 0)
	ctx := cuda.NewContext(sess, dev, cuda.DefaultCosts())
	b := backend.New(sess, ctx, spec.Model)

	env, err := sim.New(spec.Env, spec.Seed+29)
	if err != nil {
		return nil, err
	}
	agent, err := newAgent(spec, b, env)
	if err != nil {
		return nil, err
	}

	if env.Discrete() != agentNeedsDiscrete(spec.Algo) && spec.Algo == "DQN" {
		return nil, fmt.Errorf("workloads: %s/%s action-space mismatch", spec.Algo, spec.Env)
	}

	// Vectorized environments: one batched inference serves every env's
	// step; simulator steps run serially in high-level code, as in
	// stable-baselines' VecEnv.
	nEnvs := agent.NumEnvs()
	envs := make([]sim.Env, nEnvs)
	envs[0] = env
	for e := 1; e < nEnvs; e++ {
		envs[e], err = sim.New(spec.Env, spec.Seed+29+int64(e))
		if err != nil {
			return nil, err
		}
	}

	sess.SetPhase("training")
	obs := make([][]float64, nEnvs)
	sess.WithOperation(OpSimulation, func() {
		for e := range envs {
			ev := envs[e]
			sess.CallSimulator(ev.Name()+".reset", func() {
				sess.Clock().Spend(ev.ResetCost())
				obs[e] = ev.Reset()
			})
		}
	})

	stepsDone := 0
	for stepsDone < spec.TotalSteps {
		segment := agent.CollectSteps()
		if rem := (spec.TotalSteps - stepsDone + nEnvs - 1) / nEnvs; segment > rem {
			segment = rem
		}
		// Data collection: tf-agents Autograph drives this loop
		// in-graph (paper F.5). The loop-entry tracing cost is part of
		// the data-collection stage, so it is charged inside a
		// simulation annotation — that is where the paper observes the
		// resulting Python-time inflation.
		sess.WithOperation(OpSimulation, func() {
			b.AutographLoopEntry()
		})
		for step := 0; step < segment; step++ {
			var acts [][]float64
			sess.WithOperation(OpInference, func() {
				acts = agent.ActBatch(obs)
			})
			next := make([][]float64, nEnvs)
			rewards := make([]float64, nEnvs)
			dones := make([]bool, nEnvs)
			sess.WithOperation(OpSimulation, func() {
				for e := range envs {
					ev := envs[e]
					// Per-step driver glue: action unboxing
					// and observation marshaling in
					// high-level code.
					sess.Python(stepGlueCost)
					sess.CallSimulator(ev.Name()+".step", func() {
						sess.Clock().Spend(ev.StepCost())
						next[e], rewards[e], dones[e] = ev.Step(acts[e])
					})
					if dones[e] {
						sess.CallSimulator(ev.Name()+".reset", func() {
							sess.Clock().Spend(ev.ResetCost())
							next[e] = ev.Reset()
						})
					}
				}
			})
			for e := range envs {
				agent.Observe(e, rl.Transition{
					Obs: obs[e], Act: acts[e], Reward: rewards[e],
					Next: next[e], Done: dones[e],
				})
				obs[e] = next[e]
			}
		}
		stepsDone += segment * nEnvs

		for u, n := 0, agent.UpdatesPerCollect(); u < n; u++ {
			sess.WithOperation(OpBackpropagation, func() {
				agent.Update()
			})
		}
	}
	sess.Close()

	tr, err := p.Trace()
	if err != nil {
		return nil, err
	}
	return calib.StatsFromTrace(tr, flags, p.OverheadCounts(), p.TotalTime()), nil
}

func agentNeedsDiscrete(algo string) bool { return algo == "DQN" }

// Runner adapts a Spec into a calib.Runner, re-seeding per invocation so
// calibration's determinism assumption holds.
func Runner(spec Spec) calib.Runner {
	return func(flags trace.FeatureFlags, seed int64) (*calib.RunStats, error) {
		s := spec
		s.Seed = seed
		return Run(s, flags)
	}
}
