// Package report renders RL-Scope analysis results as text tables and CSV —
// the stand-in for the paper's matplotlib figures. Each experiment harness
// produces the same rows/series the corresponding paper figure plots.
package report

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/overlap"
	"repro/internal/trace"
	"repro/internal/vclock"
)

// CPUCategories are the CPU tiers in the paper's legend order, extended
// with the Network tier distributed (multi-host) traces add.
var CPUCategories = []trace.Category{
	trace.CatSimulator, trace.CatPython, trace.CatCUDA, trace.CatBackend,
	trace.CatNetwork,
}

// Breakdown is one workload's time breakdown: the data behind one bar group
// of Figures 4/5/7.
type Breakdown struct {
	Label string
	Total vclock.Duration
	// Cells maps (operation, category) to CPU time (including CPU+GPU
	// overlap time, as the paper's stacks do).
	Cells map[CellKey]vclock.Duration
	// GPUTime maps operation → device-busy time.
	GPUTime map[string]vclock.Duration
	// Ops lists operations in display order.
	Ops []string
}

// CellKey addresses one stack segment.
type CellKey struct {
	Op  string
	Cat trace.Category
}

// FromResult builds a breakdown from an overlap result, keeping only the
// listed operations (nil keeps all, sorted).
func FromResult(label string, res *overlap.Result, ops []string) *Breakdown {
	if ops == nil {
		ops = res.OpNames()
	}
	b := &Breakdown{
		Label:   label,
		Total:   res.Total(),
		Cells:   map[CellKey]vclock.Duration{},
		GPUTime: map[string]vclock.Duration{},
		Ops:     ops,
	}
	for _, op := range ops {
		for _, cat := range CPUCategories {
			if d := res.CategoryCPUTime(op, cat); d > 0 {
				b.Cells[CellKey{op, cat}] = d
			}
		}
		b.GPUTime[op] = res.GPUTime(op)
	}
	return b
}

// OpTotal sums an operation's CPU cells (GPU overlaps CPU, so this is the
// operation's critical-path time).
func (b *Breakdown) OpTotal(op string) vclock.Duration {
	var total vclock.Duration
	for _, cat := range CPUCategories {
		total += b.Cells[CellKey{op, cat}]
	}
	return total
}

// CategoryTotal sums a category across operations.
func (b *Breakdown) CategoryTotal(cat trace.Category) vclock.Duration {
	var total vclock.Duration
	for _, op := range b.Ops {
		total += b.Cells[CellKey{op, cat}]
	}
	return total
}

// TotalGPU sums device time across operations.
func (b *Breakdown) TotalGPU() vclock.Duration {
	var total vclock.Duration
	for _, d := range b.GPUTime {
		total += d
	}
	return total
}

// Table renders a set of breakdowns as an aligned text table: one row per
// (workload, operation), columns per category plus GPU — the textual form
// of a stacked bar chart.
func Table(title string, rows []*Breakdown) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s ==\n", title)
	w := tabWriter(&sb)
	fmt.Fprintf(w, "workload\toperation\ttotal\tSimulator\tPython\tCUDA\tBackend\tNetwork\tGPU\tGPU%%\n")
	for _, b := range rows {
		for _, op := range b.Ops {
			opTotal := b.OpTotal(op)
			if opTotal == 0 {
				continue
			}
			gpu := b.GPUTime[op]
			fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%s\t%.1f%%\n",
				b.Label, op, fmtDur(opTotal),
				fmtDur(b.Cells[CellKey{op, trace.CatSimulator}]),
				fmtDur(b.Cells[CellKey{op, trace.CatPython}]),
				fmtDur(b.Cells[CellKey{op, trace.CatCUDA}]),
				fmtDur(b.Cells[CellKey{op, trace.CatBackend}]),
				fmtDur(b.Cells[CellKey{op, trace.CatNetwork}]),
				fmtDur(gpu),
				pct(gpu, opTotal))
		}
		fmt.Fprintf(w, "%s\t(total)\t%s\t\t\t\t\t\t%s\t%.1f%%\n",
			b.Label, fmtDur(b.Total), fmtDur(b.TotalGPU()), pct(b.TotalGPU(), b.Total))
	}
	w.flush()
	return sb.String()
}

// CSV renders the same data as comma-separated values with a header.
func CSV(rows []*Breakdown) string {
	var sb strings.Builder
	sb.WriteString("workload,operation,total_sec,simulator_sec,python_sec,cuda_sec,backend_sec,network_sec,gpu_sec\n")
	for _, b := range rows {
		for _, op := range b.Ops {
			fmt.Fprintf(&sb, "%s,%s,%.6f,%.6f,%.6f,%.6f,%.6f,%.6f,%.6f\n",
				csvEscape(b.Label), csvEscape(op),
				b.OpTotal(op).Seconds(),
				b.Cells[CellKey{op, trace.CatSimulator}].Seconds(),
				b.Cells[CellKey{op, trace.CatPython}].Seconds(),
				b.Cells[CellKey{op, trace.CatCUDA}].Seconds(),
				b.Cells[CellKey{op, trace.CatBackend}].Seconds(),
				b.Cells[CellKey{op, trace.CatNetwork}].Seconds(),
				b.GPUTime[op].Seconds())
		}
	}
	return sb.String()
}

// TransitionRow is one bar of Figures 4c/4d.
type TransitionRow struct {
	Label string
	Op    string
	// Counts per transition label.
	Backend, Simulator, CUDA int
}

// Transitions extracts per-op transition counts from an overlap result.
func Transitions(label string, res *overlap.Result, ops []string) []TransitionRow {
	if ops == nil {
		ops = res.OpNames()
	}
	var out []TransitionRow
	for _, op := range ops {
		out = append(out, TransitionRow{
			Label:     label,
			Op:        op,
			Backend:   res.TransitionCount(op, trace.TransPythonToBackend),
			Simulator: res.TransitionCount(op, trace.TransPythonToSimulator),
			CUDA:      res.TransitionCount(op, trace.TransBackendToCUDA),
		})
	}
	return out
}

// TransitionTable renders transition rows.
func TransitionTable(title string, rows []TransitionRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s ==\n", title)
	w := tabWriter(&sb)
	fmt.Fprintf(w, "workload\toperation\tPython→Backend\tPython→Simulator\tBackend→CUDA\n")
	for _, r := range rows {
		fmt.Fprintf(w, "%s\t%s\t%d\t%d\t%d\n", r.Label, r.Op, r.Backend, r.Simulator, r.CUDA)
	}
	w.flush()
	return sb.String()
}

// fmtDur renders a duration in seconds with ms precision.
func fmtDur(d vclock.Duration) string {
	if d == 0 {
		return "-"
	}
	return fmt.Sprintf("%.4fs", d.Seconds())
}

func pct(num, den vclock.Duration) float64 {
	if den == 0 {
		return 0
	}
	return 100 * num.Seconds() / den.Seconds()
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// minimal tab alignment without text/tabwriter-style trailing-cell quirks.
type aligner struct {
	out  *strings.Builder
	rows [][]string
}

func tabWriter(out *strings.Builder) *aligner { return &aligner{out: out} }

func (a *aligner) Write(p []byte) (int, error) {
	for _, line := range strings.Split(strings.TrimRight(string(p), "\n"), "\n") {
		a.rows = append(a.rows, strings.Split(line, "\t"))
	}
	return len(p), nil
}

func (a *aligner) flush() {
	var widths []int
	for _, row := range a.rows {
		for i, cell := range row {
			if i >= len(widths) {
				widths = append(widths, 0)
			}
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	for _, row := range a.rows {
		for i, cell := range row {
			fmt.Fprintf(a.out, "%-*s", widths[i]+2, cell)
		}
		a.out.WriteString("\n")
	}
}

// PhaseTable renders per-process training-phase breakdowns (paper §3.1's
// rls.set_phase; Minigo's selfplay / sgd_updates / evaluation).
func PhaseTable(title string, phases map[trace.ProcID][]overlap.PhaseBreakdown, procNames map[trace.ProcID]string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s ==\n", title)
	w := tabWriter(&sb)
	fmt.Fprintf(w, "process\tphase\tduration\tCPU\tGPU\tGPU%%\n")
	var procs []trace.ProcID
	for p := range phases {
		procs = append(procs, p)
	}
	sort.Slice(procs, func(i, j int) bool { return procs[i] < procs[j] })
	for _, p := range procs {
		name := procNames[p]
		if name == "" {
			name = fmt.Sprintf("proc%d", p)
		}
		for _, ph := range phases[p] {
			fmt.Fprintf(w, "%s\t%s\t%s\t%s\t%s\t%.1f%%\n",
				name, ph.Name, fmtDur(ph.Duration()), fmtDur(ph.CPU), fmtDur(ph.GPU),
				pct(ph.GPU, ph.Duration()))
		}
	}
	w.flush()
	return sb.String()
}

// SortedOps returns the standard operation display order when present.
func SortedOps(res *overlap.Result) []string {
	order := map[string]int{"backpropagation": 0, "inference": 1, "simulation": 2, "communication": 3}
	ops := res.OpNames()
	sort.Slice(ops, func(i, j int) bool {
		oi, iok := order[ops[i]]
		oj, jok := order[ops[j]]
		switch {
		case iok && jok:
			return oi < oj
		case iok:
			return true
		case jok:
			return false
		default:
			return ops[i] < ops[j]
		}
	})
	return ops
}
