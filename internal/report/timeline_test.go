package report

import (
	"strings"
	"testing"

	"repro/internal/trace"
)

func TestTimelineLanes(t *testing.T) {
	events := []trace.Event{
		{Kind: trace.KindCPU, Cat: trace.CatPython, Start: 0, End: 100, Name: "python"},
		{Kind: trace.KindCPU, Cat: trace.CatBackend, Start: 20, End: 60, Name: "run"},
		{Kind: trace.KindGPU, Cat: trace.CatGPUKernel, Start: 50, End: 90, Name: "k"},
		{Kind: trace.KindOp, Start: 0, End: 50, Name: "inference"},
	}
	out := Timeline(events, 0, 100, 50)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 7 { // header + 5 tiers + 1 op
		t.Fatalf("timeline has %d lines:\n%s", len(lines), out)
	}
	find := func(label string) string {
		for _, l := range lines {
			if strings.HasPrefix(l, label) {
				return l
			}
		}
		t.Fatalf("lane %q missing:\n%s", label, out)
		return ""
	}
	py := find("Python")
	if !strings.Contains(py, "█") {
		t.Fatal("python lane empty")
	}
	// Full-span python: no idle dots.
	if strings.Contains(strings.TrimPrefix(py, "Python"), "·") {
		t.Fatalf("python lane should be fully busy: %s", py)
	}
	gpuLane := find("GPU")
	// GPU busy in second half only: first cell idle, last busy.
	cells := []rune(strings.TrimSpace(strings.TrimPrefix(gpuLane, "GPU")))
	if cells[0] != '·' || cells[len(cells)-1] != '·' && cells[len(cells)-6] != '█' {
		t.Fatalf("gpu lane shape wrong: %s", gpuLane)
	}
	find("[inference]")
}

func TestTimelineClipsToWindow(t *testing.T) {
	events := []trace.Event{
		{Kind: trace.KindCPU, Cat: trace.CatPython, Start: 0, End: 1000, Name: "python"},
	}
	out := Timeline(events, 400, 600, 20)
	if !strings.Contains(out, "timeline") {
		t.Fatal("missing header")
	}
	// Events entirely outside the window leave lanes idle.
	out2 := Timeline(events, 2000, 3000, 20)
	if strings.Contains(strings.SplitN(out2, "\n", 2)[1], "█") {
		t.Fatal("out-of-window event painted")
	}
}

func TestTimelineZeroWindow(t *testing.T) {
	if got := Timeline(nil, 5, 5, 10); got != "" {
		t.Fatalf("zero window = %q", got)
	}
}

func TestTimelineSubColumnEventVisible(t *testing.T) {
	events := []trace.Event{
		{Kind: trace.KindGPU, Cat: trace.CatGPUKernel, Start: 500, End: 501, Name: "tiny"},
	}
	out := Timeline(events, 0, 10000, 40)
	if !strings.Contains(out, "█") {
		t.Fatal("sub-column kernel invisible")
	}
}
