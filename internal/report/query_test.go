package report

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/overlap"
	"repro/internal/trace"
	"repro/internal/vclock"
)

// randomResults builds a randomized per-process result map, including the
// zero-span case (a process with counters but no interval events).
func randomResults(rng *rand.Rand) map[trace.ProcID]*overlap.Result {
	ops := []string{"inference", "simulation", "backpropagation", ""}
	labels := []string{trace.TransPythonToBackend, trace.TransPythonToSimulator}
	out := map[trace.ProcID]*overlap.Result{}
	for p := 0; p < 1+rng.Intn(4); p++ {
		res := &overlap.Result{
			ByKey:       map[overlap.Key]vclock.Duration{},
			Transitions: map[overlap.TransitionKey]int{},
		}
		for i := 0; i < rng.Intn(20); i++ {
			k := overlap.Key{
				Op:  ops[rng.Intn(len(ops))],
				Res: overlap.ResourceSet(rng.Intn(4)),
				Cat: trace.Category(rng.Intn(8)),
			}
			res.ByKey[k] += vclock.Duration(rng.Intn(1_000_000))
		}
		for i := 0; i < rng.Intn(5); i++ {
			k := overlap.TransitionKey{Op: ops[rng.Intn(len(ops))], Label: labels[rng.Intn(len(labels))]}
			res.Transitions[k] += 1 + rng.Intn(10)
		}
		if rng.Intn(4) > 0 { // leave some processes with the zero-span sentinel
			res.SpanStart = vclock.Time(rng.Intn(1000))
			res.SpanEnd = res.SpanStart + vclock.Time(rng.Intn(100_000))
		}
		out[trace.ProcID(p)] = res
	}
	return out
}

// TestResultSetRoundTrip: DecodeResultSet(EncodeResultSet(r)) reconstructs
// the result map cell-for-cell, and re-encoding the reconstruction is
// byte-identical — the property the fleet store depends on for exactness.
func TestResultSetRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		results := randomResults(rand.New(rand.NewSource(seed)))
		var first bytes.Buffer
		if err := EncodeResultSet(&first, results); err != nil {
			t.Fatal(err)
		}
		decoded, err := DecodeResultSet(first.Bytes())
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(decoded, results) {
			t.Fatalf("seed %d: decoded result map differs from original", seed)
		}
		var second bytes.Buffer
		if err := EncodeResultSet(&second, decoded); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("seed %d: re-encoding is not byte-identical:\n%s\nvs\n%s", seed, first.String(), second.String())
		}
	}
}

// TestResultSetDeterministicEncoding: equal maps encode to equal bytes
// regardless of insertion order (maps iterate randomly, so one pass with
// shuffled construction covers it).
func TestResultSetDeterministicEncoding(t *testing.T) {
	results := randomResults(rand.New(rand.NewSource(7)))
	var want bytes.Buffer
	if err := EncodeResultSet(&want, results); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		var got bytes.Buffer
		if err := EncodeResultSet(&got, results); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got.Bytes(), want.Bytes()) {
			t.Fatalf("iteration %d: encoding varies across calls", i)
		}
	}
}

// TestResultSetVersionGate: a blob with a different schema version decodes
// to an error, so stale store entries are recomputed rather than trusted.
func TestResultSetVersionGate(t *testing.T) {
	bad := []byte(fmt.Sprintf(`{"version":%d,"procs":[]}`, ResultSetVersion+1))
	if _, err := DecodeResultSet(bad); err == nil {
		t.Fatal("future-version result set accepted")
	}
	if _, err := DecodeResultSet([]byte("not json")); err == nil {
		t.Fatal("malformed result set accepted")
	}
}

// TestResultSetCellOrdering pins the canonical sort: procs ascend, cells
// by (op, res, cat), transitions by (op, label).
func TestResultSetCellOrdering(t *testing.T) {
	res := &overlap.Result{
		ByKey: map[overlap.Key]vclock.Duration{
			{Op: "b", Res: 1, Cat: 0}: 1,
			{Op: "a", Res: 2, Cat: 1}: 2,
			{Op: "a", Res: 1, Cat: 2}: 3,
			{Op: "a", Res: 1, Cat: 1}: 4,
		},
		Transitions: map[overlap.TransitionKey]int{
			{Op: "b", Label: "x"}: 1,
			{Op: "a", Label: "y"}: 2,
			{Op: "a", Label: "x"}: 3,
		},
	}
	rs := NewResultSet(map[trace.ProcID]*overlap.Result{3: res, 1: res, 2: res})
	if got := []trace.ProcID{rs.Procs[0].Proc, rs.Procs[1].Proc, rs.Procs[2].Proc}; got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("procs not ascending: %v", got)
	}
	cells := rs.Procs[0].Cells
	wantCells := []ResultCellJSON{
		{Op: "a", Res: 1, Cat: 1, DurNS: 4},
		{Op: "a", Res: 1, Cat: 2, DurNS: 3},
		{Op: "a", Res: 2, Cat: 1, DurNS: 2},
		{Op: "b", Res: 1, Cat: 0, DurNS: 1},
	}
	if !reflect.DeepEqual(cells, wantCells) {
		t.Fatalf("cell order %v, want %v", cells, wantCells)
	}
	trans := rs.Procs[0].Transitions
	wantTrans := []TransitionCellJSON{
		{Op: "a", Label: "x", Count: 3},
		{Op: "a", Label: "y", Count: 2},
		{Op: "b", Label: "x", Count: 1},
	}
	if !reflect.DeepEqual(trans, wantTrans) {
		t.Fatalf("transition order %v, want %v", trans, wantTrans)
	}
}
