package report

import (
	"strings"
	"testing"

	"repro/internal/overlap"
	"repro/internal/trace"
)

func TestProcessTree(t *testing.T) {
	tr := &trace.Trace{
		Events: []trace.Event{
			{Kind: trace.KindCPU, Cat: trace.CatPython, Proc: 0, Start: 0, End: 100, Name: "python"},
			{Kind: trace.KindCPU, Cat: trace.CatPython, Proc: 1, Start: 10, End: 60, Name: "python"},
			{Kind: trace.KindGPU, Cat: trace.CatGPUKernel, Proc: 1, Start: 20, End: 30, Name: "k"},
			{Kind: trace.KindCPU, Cat: trace.CatPython, Proc: 2, Start: 10, End: 55, Name: "python"},
		},
		Meta: trace.Meta{Procs: map[trace.ProcID]trace.ProcInfo{
			0: {Name: "trainer", Parent: -1},
			1: {Name: "selfplay_worker_0", Parent: 0},
			2: {Name: "selfplay_worker_1", Parent: 0},
		}},
	}
	out := ProcessTree(tr, overlap.ComputeTrace(tr))
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("tree has %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "trainer") {
		t.Fatalf("root not first: %s", lines[0])
	}
	if !strings.Contains(lines[1], "├─ selfplay_worker_0") {
		t.Fatalf("child connector wrong: %s", lines[1])
	}
	if !strings.Contains(lines[2], "└─ selfplay_worker_1") {
		t.Fatalf("last-child connector wrong: %s", lines[2])
	}
	if !strings.Contains(lines[1], "GPU=10ns") {
		t.Fatalf("worker GPU time missing: %s", lines[1])
	}
}

func TestProcessTreeUnnamedProcs(t *testing.T) {
	tr := &trace.Trace{
		Events: []trace.Event{
			{Kind: trace.KindCPU, Cat: trace.CatPython, Proc: 5, Start: 0, End: 10, Name: "p"},
		},
		Meta: trace.Meta{Procs: map[trace.ProcID]trace.ProcInfo{5: {Parent: -1}}},
	}
	out := ProcessTree(tr, overlap.ComputeTrace(tr))
	if !strings.Contains(out, "proc5") {
		t.Fatalf("fallback name missing:\n%s", out)
	}
}
