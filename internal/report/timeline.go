package report

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/trace"
	"repro/internal/vclock"
)

// Timeline renders a window of one process's trace as ASCII lanes — the
// textual analogue of the paper's Figure 3 illustration. One lane per stack
// tier (GPU, CUDA, Backend, Simulator, Python) plus one per operation
// annotation; each lane shows which columns of the window the tier was
// active in.
//
//	GPU        ·····██████········███████··
//	CUDA       ··█··█·····█·······█········
//	...
//	[inference]···████████████··············
func Timeline(events []trace.Event, start, end vclock.Time, width int) string {
	if width <= 0 {
		width = 72
	}
	if end <= start {
		return ""
	}
	span := float64(end.Sub(start))
	col := func(t vclock.Time) int {
		c := int(float64(t.Sub(start)) / span * float64(width))
		if c < 0 {
			c = 0
		}
		if c > width {
			c = width
		}
		return c
	}
	type lane struct {
		label string
		cells []bool
	}
	mk := func(label string) *lane { return &lane{label: label, cells: make([]bool, width)} }
	lanes := []*lane{
		mk("GPU"),
		mk("CUDA"),
		mk("Backend"),
		mk("Simulator"),
		mk("Python"),
	}
	laneFor := map[trace.Category]*lane{
		trace.CatGPUKernel: lanes[0],
		trace.CatGPUMemcpy: lanes[0],
		trace.CatCUDA:      lanes[1],
		trace.CatBackend:   lanes[2],
		trace.CatSimulator: lanes[3],
		trace.CatPython:    lanes[4],
	}
	opLanes := map[string]*lane{}
	var opNames []string

	paint := func(l *lane, s, e vclock.Time) {
		c0, c1 := col(s), col(e)
		if c1 == c0 {
			c1 = c0 + 1 // sub-column events still show one cell
		}
		for c := c0; c < c1 && c < width; c++ {
			l.cells[c] = true
		}
	}
	for _, ev := range events {
		if ev.End <= start || ev.Start >= end {
			continue
		}
		s, e := ev.Start, ev.End
		if s < start {
			s = start
		}
		if e > end {
			e = end
		}
		switch ev.Kind {
		case trace.KindCPU, trace.KindGPU:
			if l := laneFor[ev.Cat]; l != nil {
				paint(l, s, e)
			}
		case trace.KindOp:
			l := opLanes[ev.Name]
			if l == nil {
				l = mk("[" + ev.Name + "]")
				opLanes[ev.Name] = l
				opNames = append(opNames, ev.Name)
			}
			paint(l, s, e)
		}
	}
	sort.Strings(opNames)

	var sb strings.Builder
	fmt.Fprintf(&sb, "timeline %v .. %v (%v per column)\n", start, end,
		vclock.Duration(span/float64(width)))
	render := func(l *lane) {
		fmt.Fprintf(&sb, "%-18s", l.label)
		for _, on := range l.cells {
			if on {
				sb.WriteRune('█')
			} else {
				sb.WriteRune('·')
			}
		}
		sb.WriteByte('\n')
	}
	for _, l := range lanes {
		render(l)
	}
	for _, name := range opNames {
		render(opLanes[name])
	}
	return sb.String()
}
