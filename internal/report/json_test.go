package report

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/analysis"
	"repro/internal/overlap"
	"repro/internal/trace"
	"repro/internal/vclock"
)

// jsonTestResult builds a small two-op overlap result directly.
func jsonTestResult() *overlap.Result {
	return &overlap.Result{
		ByKey: map[overlap.Key]vclock.Duration{
			{Op: "inference", Res: overlap.ResCPU, Cat: trace.CatPython}:                100,
			{Op: "inference", Res: overlap.ResCPU | overlap.ResGPU, Cat: trace.CatCUDA}: 40,
			{Op: "simulation", Res: overlap.ResCPU, Cat: trace.CatSimulator}:            250,
		},
		Transitions: map[overlap.TransitionKey]int{
			{Op: "inference", Label: trace.TransBackendToCUDA}:      3,
			{Op: "simulation", Label: trace.TransPythonToSimulator}: 7,
		},
	}
}

func jsonTestMeta() trace.Meta {
	return trace.Meta{
		Workload: "json-test",
		Config:   trace.Full(),
		Procs: map[trace.ProcID]trace.ProcInfo{
			0: {Name: "trainer", Parent: -1},
			1: {Name: "worker", Parent: 0},
		},
	}
}

func TestNewAnalysisDeterministicEncoding(t *testing.T) {
	results := map[trace.ProcID]*overlap.Result{
		1: jsonTestResult(),
		0: jsonTestResult(),
	}
	stats := analysis.StreamStats{Chunks: 2, ChunksDecoded: 2, Events: 6, Shards: 2}
	var bufs [3]bytes.Buffer
	for i := range bufs {
		if err := NewAnalysis(jsonTestMeta(), results, stats, false).Encode(&bufs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(bufs[0].Bytes(), bufs[1].Bytes()) || !bytes.Equal(bufs[1].Bytes(), bufs[2].Bytes()) {
		t.Fatal("repeated encodings of the same analysis differ")
	}

	var doc Analysis
	if err := json.Unmarshal(bufs[0].Bytes(), &doc); err != nil {
		t.Fatalf("document does not round-trip: %v", err)
	}
	if doc.Workload != "json-test" || len(doc.Processes) != 2 {
		t.Fatalf("unexpected document: %+v", doc)
	}
	if doc.Processes[0].Proc != 0 || doc.Processes[1].Proc != 1 {
		t.Fatalf("processes not ascending by id: %+v", doc.Processes)
	}
	if doc.Processes[0].Name != "trainer" || doc.Processes[1].Parent != 0 {
		t.Fatalf("metadata not threaded through: %+v", doc.Processes)
	}
	if doc.Stats.Events != 6 || doc.Stats.Chunks != 2 {
		t.Fatalf("stats not threaded through: %+v", doc.Stats)
	}
}

func TestBreakdownToJSONValues(t *testing.T) {
	res := jsonTestResult()
	b := FromResult("trainer", res, SortedOps(res))
	bj := BreakdownToJSON(b)
	if bj.TotalNS != int64(res.Total()) {
		t.Fatalf("TotalNS = %d, want %d", bj.TotalNS, int64(res.Total()))
	}
	// SortedOps puts inference before simulation.
	if len(bj.Ops) != 2 || bj.Ops[0].Op != "inference" || bj.Ops[1].Op != "simulation" {
		t.Fatalf("ops wrong or misordered: %+v", bj.Ops)
	}
	inf := bj.Ops[0]
	if inf.PythonNS != 100 || inf.CUDANS != 40 || inf.GPUNS != 40 || inf.TotalNS != 140 {
		t.Fatalf("inference row wrong: %+v", inf)
	}
	sim := bj.Ops[1]
	if sim.SimulatorNS != 250 || sim.GPUNS != 0 || sim.TotalNS != 250 {
		t.Fatalf("simulation row wrong: %+v", sim)
	}
}

func TestNewAnalysisTransitions(t *testing.T) {
	results := map[trace.ProcID]*overlap.Result{0: jsonTestResult()}
	doc := NewAnalysis(jsonTestMeta(), results, analysis.StreamStats{}, true)
	if !doc.Corrected {
		t.Fatal("corrected flag dropped")
	}
	tr := doc.Processes[0].Transitions
	if len(tr) != 2 {
		t.Fatalf("want 2 transition rows, got %+v", tr)
	}
	if tr[0].Op != "inference" || tr[0].BackendToCUDA != 3 {
		t.Fatalf("inference transitions wrong: %+v", tr[0])
	}
	if tr[1].Op != "simulation" || tr[1].PythonToSimulator != 7 {
		t.Fatalf("simulation transitions wrong: %+v", tr[1])
	}
}

func TestTreeJSON(t *testing.T) {
	meta := trace.Meta{Procs: map[trace.ProcID]trace.ProcInfo{
		0: {Name: "trainer", Parent: -1},
		1: {Name: "w1", Parent: 0},
		2: {Name: "w2", Parent: 0},
		3: {Name: "orphan", Parent: 9}, // parent missing: treated as a root
	}}
	roots := TreeJSON(meta)
	if len(roots) != 2 || roots[0].Name != "trainer" || roots[1].Name != "orphan" {
		t.Fatalf("unexpected roots: %+v", roots)
	}
	kids := roots[0].Children
	if len(kids) != 2 || kids[0].Proc != 1 || kids[1].Proc != 2 {
		t.Fatalf("unexpected children: %+v", kids)
	}
}
