package report

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/analysis"
	"repro/internal/overlap"
	"repro/internal/trace"
)

// Analysis is the stable JSON document describing one analysis run: the
// wire format of both `rlscope-analyze -json` and rlscope-serve's
// POST /analyze response. Construction is deterministic — processes ascend
// by id, operations follow SortedOps, and all durations are integer
// nanoseconds — so the same trace analyzed under the same options encodes
// to the same bytes, which is what makes the document safe to address by
// content (the service caches the encoded bytes keyed by trace digest +
// canonicalized options).
//
// The Stats block is the one part describing the run rather than the
// result: its scheduling fields (shards, evictions, peak residency) depend
// on worker interleaving and are only reproducible at Workers:1. Every
// other field is byte-identical across worker counts and memory budgets.
// Documents that do not come from one batch engine run — live-ingest
// incremental analyses, `rlscope-analyze -result-only` — omit the block
// entirely (Stats nil), leaving a document that is a pure function of the
// trace content and the analysis options.
type Analysis struct {
	Workload  string             `json:"workload"`
	Host      string             `json:"host,omitempty"`
	Config    trace.FeatureFlags `json:"config"`
	Corrected bool               `json:"corrected"`
	Processes []ProcessJSON      `json:"processes"`
	Stats     *StreamStatsJSON   `json:"stats,omitempty"`
}

// ProcessJSON is one process's slice of the document. Parent encodes the
// fork tree in flat form (see TreeJSON for the nested form).
type ProcessJSON struct {
	Proc        trace.ProcID        `json:"proc"`
	Name        string              `json:"name"`
	Parent      trace.ProcID        `json:"parent"`
	Breakdown   BreakdownJSON       `json:"breakdown"`
	Transitions []TransitionRowJSON `json:"transitions,omitempty"`
}

// BreakdownJSON is the stable wire form of a Breakdown: the per-operation
// stacked-bar cells of Figures 4/5/7 as integer nanoseconds.
type BreakdownJSON struct {
	TotalNS int64       `json:"total_ns"`
	GPUNS   int64       `json:"gpu_ns"`
	Ops     []OpRowJSON `json:"ops"`
}

// OpRowJSON is one operation's row: CPU time split by stack tier (each tier
// includes its CPU+GPU overlap, as the paper's stacks do) plus device-busy
// time.
type OpRowJSON struct {
	Op          string `json:"op"`
	TotalNS     int64  `json:"total_ns"`
	SimulatorNS int64  `json:"simulator_ns"`
	PythonNS    int64  `json:"python_ns"`
	CUDANS      int64  `json:"cuda_ns"`
	BackendNS   int64  `json:"backend_ns"`
	NetworkNS   int64  `json:"network_ns"`
	GPUNS       int64  `json:"gpu_ns"`
}

// TransitionRowJSON is the wire form of a TransitionRow (Figures 4c/4d).
type TransitionRowJSON struct {
	Op                string `json:"op"`
	PythonToBackend   int    `json:"python_to_backend"`
	PythonToSimulator int    `json:"python_to_simulator"`
	BackendToCUDA     int    `json:"backend_to_cuda"`
}

// StreamStatsJSON is the wire form of analysis.StreamStats.
type StreamStatsJSON struct {
	Chunks             int   `json:"chunks"`
	ChunksDecoded      int   `json:"chunks_decoded"`
	Events             int   `json:"events"`
	Shards             int   `json:"shards"`
	Evictions          int   `json:"evictions"`
	PeakResidentEvents int   `json:"peak_resident_events"`
	PeakResidentBytes  int64 `json:"peak_resident_bytes"`
}

// StatsJSON converts streaming statistics to their wire form.
func StatsJSON(s analysis.StreamStats) StreamStatsJSON {
	return StreamStatsJSON{
		Chunks:             s.Chunks,
		ChunksDecoded:      s.ChunksDecoded,
		Events:             s.Events,
		Shards:             s.Shards,
		Evictions:          s.Evictions,
		PeakResidentEvents: s.PeakResidentEvents,
		PeakResidentBytes:  s.PeakResidentBytes,
	}
}

// BreakdownToJSON converts a Breakdown to its wire form, preserving the
// breakdown's operation order.
func BreakdownToJSON(b *Breakdown) BreakdownJSON {
	out := BreakdownJSON{
		TotalNS: int64(b.Total),
		GPUNS:   int64(b.TotalGPU()),
		Ops:     make([]OpRowJSON, 0, len(b.Ops)),
	}
	for _, op := range b.Ops {
		out.Ops = append(out.Ops, OpRowJSON{
			Op:          op,
			TotalNS:     int64(b.OpTotal(op)),
			SimulatorNS: int64(b.Cells[CellKey{op, trace.CatSimulator}]),
			PythonNS:    int64(b.Cells[CellKey{op, trace.CatPython}]),
			CUDANS:      int64(b.Cells[CellKey{op, trace.CatCUDA}]),
			BackendNS:   int64(b.Cells[CellKey{op, trace.CatBackend}]),
			NetworkNS:   int64(b.Cells[CellKey{op, trace.CatNetwork}]),
			GPUNS:       int64(b.GPUTime[op]),
		})
	}
	return out
}

// TransitionsToJSON converts transition rows to their wire form.
func TransitionsToJSON(rows []TransitionRow) []TransitionRowJSON {
	out := make([]TransitionRowJSON, 0, len(rows))
	for _, r := range rows {
		out = append(out, TransitionRowJSON{
			Op:                r.Op,
			PythonToBackend:   r.Backend,
			PythonToSimulator: r.Simulator,
			BackendToCUDA:     r.CUDA,
		})
	}
	return out
}

// NewAnalysis assembles the stable document for one analysis run: one
// ProcessJSON per result, ascending by process id, operations in SortedOps
// order, transitions included only for operations with a nonzero count.
func NewAnalysis(meta trace.Meta, results map[trace.ProcID]*overlap.Result, stats analysis.StreamStats, corrected bool) *Analysis {
	a := NewResultAnalysis(meta, results, corrected)
	sj := StatsJSON(stats)
	a.Stats = &sj
	return a
}

// NewResultAnalysis assembles the result-only document: NewAnalysis without
// the run-descriptive Stats block. This is the form whose bytes depend only
// on trace content and options — what the live-ingest incremental path
// serves and what `rlscope-analyze -result-only` prints, so the two can be
// compared byte-for-byte.
func NewResultAnalysis(meta trace.Meta, results map[trace.ProcID]*overlap.Result, corrected bool) *Analysis {
	procs := make([]trace.ProcID, 0, len(results))
	for p := range results {
		procs = append(procs, p)
	}
	sort.Slice(procs, func(i, j int) bool { return procs[i] < procs[j] })
	a := &Analysis{
		Workload:  meta.Workload,
		Host:      meta.Host,
		Config:    meta.Config,
		Corrected: corrected,
		Processes: make([]ProcessJSON, 0, len(procs)),
	}
	for _, p := range procs {
		res := results[p]
		info := meta.Procs[p]
		name := info.Name
		if name == "" {
			name = defaultProcName(p)
		}
		ops := SortedOps(res)
		pj := ProcessJSON{
			Proc:      p,
			Name:      name,
			Parent:    info.Parent,
			Breakdown: BreakdownToJSON(FromResult(name, res, ops)),
		}
		var rows []TransitionRow
		for _, row := range Transitions(name, res, ops) {
			if row.Backend+row.Simulator+row.CUDA > 0 {
				rows = append(rows, row)
			}
		}
		pj.Transitions = TransitionsToJSON(rows)
		a.Processes = append(a.Processes, pj)
	}
	return a
}

// Encode writes the document as indented JSON with a trailing newline —
// the exact bytes rlscope-serve caches and `rlscope-analyze -json` prints.
func (a *Analysis) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.SetIndent("", "  ")
	return enc.Encode(a)
}

// TreeNode is the nested wire form of the multi-process fork tree (the JSON
// counterpart of ProcessTree's Figure 8 rendering).
type TreeNode struct {
	Proc     trace.ProcID `json:"proc"`
	Name     string       `json:"name"`
	Children []*TreeNode  `json:"children,omitempty"`
}

// TreeJSON builds the fork forest from run metadata: roots (Parent < 0)
// ascend by process id, as do every node's children. Processes whose parent
// is missing from the metadata are treated as roots rather than dropped.
func TreeJSON(meta trace.Meta) []*TreeNode {
	procs := make([]trace.ProcID, 0, len(meta.Procs))
	for p := range meta.Procs {
		procs = append(procs, p)
	}
	sort.Slice(procs, func(i, j int) bool { return procs[i] < procs[j] })
	nodes := make(map[trace.ProcID]*TreeNode, len(procs))
	for _, p := range procs {
		name := meta.Procs[p].Name
		if name == "" {
			name = defaultProcName(p)
		}
		nodes[p] = &TreeNode{Proc: p, Name: name}
	}
	var roots []*TreeNode
	for _, p := range procs {
		parent := meta.Procs[p].Parent
		if parent >= 0 && nodes[parent] != nil && parent != p {
			nodes[parent].Children = append(nodes[parent].Children, nodes[p])
		} else {
			roots = append(roots, nodes[p])
		}
	}
	return roots
}

// defaultProcName matches the "proc%d" fallback the text reports use.
func defaultProcName(p trace.ProcID) string { return fmt.Sprintf("proc%d", p) }
