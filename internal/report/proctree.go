package report

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/overlap"
	"repro/internal/trace"
	"repro/internal/vclock"
)

// ProcessTree renders the multi-process view of Figure 8: one node per
// simulated process, indented under its fork parent, with total runtime and
// GPU-busy time per node.
//
//	trainer                   total=8.1s   GPU=0.42s
//	├─ selfplay_worker_0      total=5.1s   GPU=0.02s
//	├─ selfplay_worker_1      total=5.0s   GPU=0.02s
//	...
func ProcessTree(t *trace.Trace, results map[trace.ProcID]*overlap.Result) string {
	children := map[trace.ProcID][]trace.ProcID{}
	var roots []trace.ProcID
	for _, p := range t.ProcIDs() {
		info := t.Meta.Procs[p]
		if info.Parent < 0 {
			roots = append(roots, p)
		} else {
			children[info.Parent] = append(children[info.Parent], p)
		}
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i] < roots[j] })
	for _, kids := range children {
		sort.Slice(kids, func(i, j int) bool { return kids[i] < kids[j] })
	}

	var sb strings.Builder
	var render func(p trace.ProcID, depth int, last bool)
	render = func(p trace.ProcID, depth int, last bool) {
		name := t.Meta.Procs[p].Name
		if name == "" {
			name = fmt.Sprintf("proc%d", p)
		}
		prefix := ""
		if depth > 0 {
			prefix = strings.Repeat("   ", depth-1)
			if last {
				prefix += "└─ "
			} else {
				prefix += "├─ "
			}
		}
		var total, gpuT vclock.Duration
		if res := results[p]; res != nil {
			total = vclock.Duration(res.SpanEnd - res.SpanStart)
			gpuT = res.TotalGPUTime()
		}
		fmt.Fprintf(&sb, "%-28s total=%-14v GPU=%v\n", prefix+name, total, gpuT)
		kids := children[p]
		for i, k := range kids {
			render(k, depth+1, i == len(kids)-1)
		}
	}
	for _, r := range roots {
		render(r, 0, true)
	}
	return sb.String()
}
