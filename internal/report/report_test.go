package report

import (
	"strings"
	"testing"

	"repro/internal/overlap"
	"repro/internal/trace"
)

func sampleResult() *overlap.Result {
	events := []trace.Event{
		{Kind: trace.KindCPU, Cat: trace.CatPython, Start: 0, End: 1000, Name: "python"},
		{Kind: trace.KindCPU, Cat: trace.CatBackend, Start: 100, End: 400, Name: "run"},
		{Kind: trace.KindCPU, Cat: trace.CatCUDA, Start: 150, End: 250, Name: "cudaLaunchKernel"},
		{Kind: trace.KindCPU, Cat: trace.CatSimulator, Start: 600, End: 900, Name: "step"},
		{Kind: trace.KindGPU, Cat: trace.CatGPUKernel, Start: 200, End: 350, Name: "k"},
		{Kind: trace.KindOp, Start: 0, End: 500, Name: "backpropagation"},
		{Kind: trace.KindOp, Start: 500, End: 1000, Name: "simulation"},
		{Kind: trace.KindTransition, Start: 90, End: 90, Name: trace.TransPythonToBackend},
		{Kind: trace.KindTransition, Start: 590, End: 590, Name: trace.TransPythonToSimulator},
	}
	return overlap.Compute(events)
}

func TestFromResultCells(t *testing.T) {
	b := FromResult("test", sampleResult(), nil)
	if b.Total != 1000 {
		t.Fatalf("Total = %v, want 1000", b.Total)
	}
	if got := b.Cells[CellKey{"backpropagation", trace.CatCUDA}]; got != 100 {
		t.Fatalf("CUDA cell = %v, want 100", got)
	}
	if got := b.Cells[CellKey{"simulation", trace.CatSimulator}]; got != 300 {
		t.Fatalf("Simulator cell = %v, want 300", got)
	}
	if got := b.GPUTime["backpropagation"]; got != 150 {
		t.Fatalf("GPU time = %v, want 150", got)
	}
	if got := b.OpTotal("backpropagation"); got != 500 {
		t.Fatalf("OpTotal = %v, want 500", got)
	}
	// Python = total − backend span (which itself contains the CUDA
	// call) − simulator span = 1000 − 300 − 300.
	if got := b.CategoryTotal(trace.CatPython); got != 400 {
		t.Fatalf("python total = %v, want 400", got)
	}
	if got := b.TotalGPU(); got != 150 {
		t.Fatalf("TotalGPU = %v", got)
	}
}

func TestTableRendersAllRows(t *testing.T) {
	b := FromResult("w1", sampleResult(), []string{"backpropagation", "simulation"})
	out := Table("unit", []*Breakdown{b})
	for _, want := range []string{"unit", "w1", "backpropagation", "simulation", "(total)"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}

func TestCSVFormat(t *testing.T) {
	b := FromResult("w,1", sampleResult(), []string{"simulation"})
	out := CSV([]*Breakdown{b})
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("CSV has %d lines, want 2", len(lines))
	}
	if !strings.HasPrefix(lines[0], "workload,operation,") {
		t.Fatalf("bad header: %s", lines[0])
	}
	if !strings.HasPrefix(lines[1], `"w,1",simulation,`) {
		t.Fatalf("label not escaped: %s", lines[1])
	}
}

func TestTransitions(t *testing.T) {
	rows := Transitions("w", sampleResult(), []string{"backpropagation", "simulation"})
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].Backend != 1 || rows[1].Simulator != 1 {
		t.Fatalf("transition counts wrong: %+v", rows)
	}
	out := TransitionTable("t", rows)
	if !strings.Contains(out, "Python→Backend") {
		t.Fatal("header missing")
	}
}

func TestSortedOpsOrder(t *testing.T) {
	ops := SortedOps(sampleResult())
	if len(ops) != 2 || ops[0] != "backpropagation" || ops[1] != "simulation" {
		t.Fatalf("SortedOps = %v", ops)
	}
}

func TestPhaseTable(t *testing.T) {
	phases := map[trace.ProcID][]overlap.PhaseBreakdown{
		0: {{Name: "selfplay", Start: 0, End: 100, CPU: 90, GPU: 5}},
		1: {{Name: "selfplay", Start: 0, End: 80, CPU: 70, GPU: 3}},
	}
	out := PhaseTable("phases", phases, map[trace.ProcID]string{0: "trainer"})
	for _, want := range []string{"phases", "trainer", "proc1", "selfplay"} {
		if !strings.Contains(out, want) {
			t.Fatalf("phase table missing %q:\n%s", want, out)
		}
	}
}

func TestCSVEscape(t *testing.T) {
	if csvEscape(`a"b`) != `"a""b"` {
		t.Fatalf("quote escaping wrong: %s", csvEscape(`a"b`))
	}
	if csvEscape("plain") != "plain" {
		t.Fatal("plain string modified")
	}
}
