package report

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"

	"repro/internal/overlap"
	"repro/internal/trace"
	"repro/internal/vclock"
)

// ResultSet is the canonical full-fidelity wire form of a per-process
// overlap result map — every (op, resource-set, category) cell and every
// transition counter, not the lossy per-op projection Analysis renders.
// It exists so per-trace results can be persisted (the serve report store)
// and later merged exactly: DecodeResultSet(EncodeResultSet(r)) reconstructs
// r cell-for-cell, so a fleet query over stored results merges the same
// integers a fresh Engine run would produce.
//
// Encoding is deterministic: processes ascend by id, cells sort by
// (op, res, cat), transitions by (op, label), durations are integer
// nanoseconds. Equal result maps encode to equal bytes.
type ResultSet struct {
	Version int              `json:"version"`
	Procs   []ProcResultJSON `json:"procs"`
}

// ResultSetVersion is the schema version EncodeResultSet writes. Bump it
// when the encoding changes shape; stored blobs with a different version
// are treated as store misses and recomputed.
const ResultSetVersion = 1

// ProcResultJSON is one process's full overlap result.
type ProcResultJSON struct {
	Proc        trace.ProcID         `json:"proc"`
	SpanStartNS int64                `json:"span_start_ns"`
	SpanEndNS   int64                `json:"span_end_ns"`
	Cells       []ResultCellJSON     `json:"cells"`
	Transitions []TransitionCellJSON `json:"transitions,omitempty"`
}

// ResultCellJSON is one exact breakdown cell: the resource set and category
// are carried as their raw codes so nothing is projected away.
type ResultCellJSON struct {
	Op    string `json:"op"`
	Res   uint8  `json:"res"`
	Cat   uint8  `json:"cat"`
	DurNS int64  `json:"dur_ns"`
}

// TransitionCellJSON is one exact transition counter.
type TransitionCellJSON struct {
	Op    string `json:"op"`
	Label string `json:"label"`
	Count int    `json:"count"`
}

// NewResultSet builds the canonical wire form of a per-process result map.
func NewResultSet(results map[trace.ProcID]*overlap.Result) *ResultSet {
	procs := make([]trace.ProcID, 0, len(results))
	for p := range results {
		procs = append(procs, p)
	}
	sort.Slice(procs, func(i, j int) bool { return procs[i] < procs[j] })
	rs := &ResultSet{Version: ResultSetVersion, Procs: make([]ProcResultJSON, 0, len(procs))}
	for _, p := range procs {
		res := results[p]
		pr := ProcResultJSON{
			Proc:        p,
			SpanStartNS: int64(res.SpanStart),
			SpanEndNS:   int64(res.SpanEnd),
			Cells:       make([]ResultCellJSON, 0, len(res.ByKey)),
		}
		for k, d := range res.ByKey {
			pr.Cells = append(pr.Cells, ResultCellJSON{
				Op: k.Op, Res: uint8(k.Res), Cat: uint8(k.Cat), DurNS: int64(d),
			})
		}
		sort.Slice(pr.Cells, func(i, j int) bool {
			a, b := pr.Cells[i], pr.Cells[j]
			if a.Op != b.Op {
				return a.Op < b.Op
			}
			if a.Res != b.Res {
				return a.Res < b.Res
			}
			return a.Cat < b.Cat
		})
		for k, n := range res.Transitions {
			pr.Transitions = append(pr.Transitions, TransitionCellJSON{Op: k.Op, Label: k.Label, Count: n})
		}
		sort.Slice(pr.Transitions, func(i, j int) bool {
			a, b := pr.Transitions[i], pr.Transitions[j]
			if a.Op != b.Op {
				return a.Op < b.Op
			}
			return a.Label < b.Label
		})
		rs.Procs = append(rs.Procs, pr)
	}
	return rs
}

// Results reconstructs the per-process result map the set encodes.
func (rs *ResultSet) Results() map[trace.ProcID]*overlap.Result {
	out := make(map[trace.ProcID]*overlap.Result, len(rs.Procs))
	for _, pr := range rs.Procs {
		res := &overlap.Result{
			ByKey:       make(map[overlap.Key]vclock.Duration, len(pr.Cells)),
			Transitions: make(map[overlap.TransitionKey]int, len(pr.Transitions)),
			SpanStart:   vclock.Time(pr.SpanStartNS),
			SpanEnd:     vclock.Time(pr.SpanEndNS),
		}
		for _, c := range pr.Cells {
			res.ByKey[overlap.Key{Op: c.Op, Res: overlap.ResourceSet(c.Res), Cat: trace.Category(c.Cat)}] = vclock.Duration(c.DurNS)
		}
		for _, t := range pr.Transitions {
			res.Transitions[overlap.TransitionKey{Op: t.Op, Label: t.Label}] = t.Count
		}
		out[pr.Proc] = res
	}
	return out
}

// EncodeResultSet writes results in canonical form: compact JSON with a
// trailing newline, equal maps to equal bytes.
func EncodeResultSet(w io.Writer, results map[trace.ProcID]*overlap.Result) error {
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	return enc.Encode(NewResultSet(results))
}

// DecodeResultSet parses bytes written by EncodeResultSet back into a
// result map. A version mismatch is an error — callers treating the bytes
// as a cache entry discard and recompute.
func DecodeResultSet(data []byte) (map[trace.ProcID]*overlap.Result, error) {
	var rs ResultSet
	if err := json.Unmarshal(data, &rs); err != nil {
		return nil, fmt.Errorf("report: decoding result set: %w", err)
	}
	if rs.Version != ResultSetVersion {
		return nil, fmt.Errorf("report: result set version %d, want %d", rs.Version, ResultSetVersion)
	}
	return rs.Results(), nil
}

// QueryDoc is the stable JSON document a fleet query produces: the wire
// format of both POST /v1/query and `rlscope-query`. Like Analysis, its
// construction is deterministic — groups sort by key, member traces by id,
// op rows by SortedOps, metric rows by the canonical metric order — and it
// carries no run-descriptive state (no cache-tier or engine-run counters),
// so the offline CLI and a warm server produce byte-identical documents
// for the same traces and query.
type QueryDoc struct {
	Query  QueryEchoJSON `json:"query"`
	Traces int           `json:"traces"`
	Groups []GroupJSON   `json:"groups"`
}

// QueryEchoJSON echoes the canonicalized query the document answers, making
// the document self-describing. Maps marshal with sorted keys, so the echo
// is as byte-stable as the rest.
type QueryEchoJSON struct {
	Filter  map[string]string `json:"filter,omitempty"`
	GroupBy []string          `json:"group_by,omitempty"`
	Metrics []string          `json:"metrics,omitempty"`
	Compare *CompareEchoJSON  `json:"compare,omitempty"`
}

// CompareEchoJSON echoes a compare clause.
type CompareEchoJSON struct {
	Baseline map[string]string `json:"baseline"`
}

// GroupJSON is one group's slice of a query document: which traces merged
// into it, the selected scalar metrics over the exact-merged result, the
// full per-op breakdown, and (under a compare clause) the delta against the
// baseline group.
type GroupJSON struct {
	// Key maps each group_by dimension to this group's value. The empty
	// map (one all-traces group) renders as {}.
	Key map[string]string `json:"key"`
	// TraceIDs lists the member traces, ascending.
	TraceIDs []string `json:"trace_ids"`
	// Procs counts processes across member traces.
	Procs int `json:"procs"`
	// Metrics holds the selected scalar metrics in canonical order.
	Metrics []MetricJSON `json:"metrics"`
	// Breakdown is the per-op rendering of the group's exact-merged
	// result — the same rows a single-trace Analysis document carries.
	Breakdown BreakdownJSON `json:"breakdown"`
	// Transitions are the group's merged transition counts per op.
	Transitions []TransitionRowJSON `json:"transitions,omitempty"`
	// Compare is present only under a compare clause: the baseline group
	// carries {"baseline": true}, every other group its deltas.
	Compare *CompareJSON `json:"compare,omitempty"`
}

// MetricJSON is one scalar metric row. Durations and counts are integers;
// ratios (gpu_frac) are rounded to 1e-6 so the rendering is byte-stable.
type MetricJSON struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// CompareJSON is a group's relation to the compare baseline.
type CompareJSON struct {
	// Baseline marks the baseline group itself.
	Baseline bool `json:"baseline,omitempty"`
	// Delta is this group's metric values minus the baseline's, in the
	// group's metric order.
	Delta []MetricJSON `json:"delta,omitempty"`
	// Ratio is this group's metric values divided by the baseline's,
	// rounded to 1e-4; metrics whose baseline value is zero are omitted.
	Ratio []MetricJSON `json:"ratio,omitempty"`
}

// RoundFrac rounds fractional metric values to 1e-6 — enough resolution
// for a share-of-time metric, coarse enough that the decimal rendering is
// short and stable.
func RoundFrac(v float64) float64 { return math.Round(v*1e6) / 1e6 }

// RoundRatio rounds compare ratios to 1e-4.
func RoundRatio(v float64) float64 { return math.Round(v*1e4) / 1e4 }

// Encode writes the document as indented JSON with a trailing newline —
// the exact bytes rlscope-serve answers /v1/query with and rlscope-query
// prints.
func (q *QueryDoc) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.SetIndent("", "  ")
	return enc.Encode(q)
}
