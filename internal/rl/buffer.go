// Package rl implements the RL algorithms surveyed by the paper — DQN,
// DDPG, TD3, SAC (off-policy) and A2C, PPO2 (on-policy) — on top of the
// simulated ML backend. Every algorithm trains real networks with real
// gradients; the backend charges simulated CPU/GPU time around the math, so
// profiled training runs produce the cross-stack traces the case studies
// analyze.
package rl

import (
	"fmt"
	"math"
	"math/rand"
)

// Transition is one environment step.
type Transition struct {
	Obs    []float64
	Act    []float64
	Reward float64
	Next   []float64
	Done   bool
}

// ReplayBuffer is the experience cache off-policy algorithms sample from
// (paper §2.1: DQN's "cached experience tuples").
type ReplayBuffer struct {
	buf   []Transition
	next  int
	full  bool
	rng   *rand.Rand
	limit int
}

// NewReplayBuffer creates a buffer holding at most capacity transitions.
func NewReplayBuffer(capacity int, seed int64) *ReplayBuffer {
	if capacity <= 0 {
		panic("rl: replay buffer capacity must be positive")
	}
	return &ReplayBuffer{
		buf:   make([]Transition, 0, capacity),
		rng:   rand.New(rand.NewSource(seed)),
		limit: capacity,
	}
}

// Add stores one transition, evicting the oldest when full.
func (r *ReplayBuffer) Add(t Transition) {
	if len(r.buf) < r.limit {
		r.buf = append(r.buf, t)
		return
	}
	r.buf[r.next] = t
	r.next = (r.next + 1) % r.limit
	r.full = true
}

// Len returns the number of stored transitions.
func (r *ReplayBuffer) Len() int { return len(r.buf) }

// Capacity returns the buffer limit.
func (r *ReplayBuffer) Capacity() int { return r.limit }

// Sample draws n transitions uniformly with replacement.
func (r *ReplayBuffer) Sample(n int) []Transition {
	if len(r.buf) == 0 {
		panic("rl: sampling from empty replay buffer")
	}
	out := make([]Transition, n)
	for i := range out {
		out[i] = r.buf[r.rng.Intn(len(r.buf))]
	}
	return out
}

// Rollout is the on-policy trajectory buffer for A2C/PPO: fixed-length
// segments collected with the current policy, consumed whole by each update
// (the structural reason on-policy algorithms are simulation-bound, paper
// F.10).
type Rollout struct {
	Obs     [][]float64
	Acts    [][]float64
	Rewards []float64
	Dones   []bool
	Values  []float64
	LogPs   []float64
	// LastValue bootstraps the value of the state after the final step.
	LastValue float64
}

// Add appends one step.
func (ro *Rollout) Add(obs, act []float64, reward float64, done bool, value, logp float64) {
	ro.Obs = append(ro.Obs, obs)
	ro.Acts = append(ro.Acts, act)
	ro.Rewards = append(ro.Rewards, reward)
	ro.Dones = append(ro.Dones, done)
	ro.Values = append(ro.Values, value)
	ro.LogPs = append(ro.LogPs, logp)
}

// Len returns the number of collected steps.
func (ro *Rollout) Len() int { return len(ro.Rewards) }

// Reset clears the rollout for the next collection segment.
func (ro *Rollout) Reset() {
	ro.Obs = ro.Obs[:0]
	ro.Acts = ro.Acts[:0]
	ro.Rewards = ro.Rewards[:0]
	ro.Dones = ro.Dones[:0]
	ro.Values = ro.Values[:0]
	ro.LogPs = ro.LogPs[:0]
	ro.LastValue = 0
}

// GAE computes generalized-advantage estimates and discounted returns for
// the rollout with discount gamma and smoothing lambda.
func (ro *Rollout) GAE(gamma, lambda float64) (advantages, returns []float64) {
	n := ro.Len()
	advantages = make([]float64, n)
	returns = make([]float64, n)
	var adv float64
	for t := n - 1; t >= 0; t-- {
		var nextValue float64
		var nextNonTerminal float64
		if t == n-1 {
			nextValue = ro.LastValue
		} else {
			nextValue = ro.Values[t+1]
		}
		if !ro.Dones[t] {
			nextNonTerminal = 1
		}
		delta := ro.Rewards[t] + gamma*nextValue*nextNonTerminal - ro.Values[t]
		adv = delta + gamma*lambda*nextNonTerminal*adv
		advantages[t] = adv
		returns[t] = adv + ro.Values[t]
	}
	return advantages, returns
}

// NormalizeAdvantages standardizes advantages in place (mean 0, std 1),
// the usual PPO/A2C trick.
func NormalizeAdvantages(adv []float64) {
	if len(adv) == 0 {
		return
	}
	var mean float64
	for _, a := range adv {
		mean += a
	}
	mean /= float64(len(adv))
	var varsum float64
	for _, a := range adv {
		d := a - mean
		varsum += d * d
	}
	std := math.Sqrt(varsum / float64(len(adv)))
	if std < 1e-8 {
		std = 1e-8
	}
	for i := range adv {
		adv[i] = (adv[i] - mean) / std
	}
}

// validateDims panics when an algorithm's configuration is inconsistent
// with its environment.
func validateDims(name string, obsDim, actDim int) {
	if obsDim <= 0 || actDim <= 0 {
		panic(fmt.Sprintf("rl: %s configured with obsDim=%d actDim=%d", name, obsDim, actDim))
	}
}
