package rl

import (
	"math"
	"math/rand"

	"repro/internal/backend"
	"repro/internal/nn"
)

// A2C is synchronous advantage actor-critic, the paper's first on-policy
// survey algorithm. Following stable-baselines, it collects short
// fixed-length rollouts from a vector of 16 environments — one batched
// inference serves every environment's step, while the simulator steps run
// serially in high-level code. That structure is why A2C is the most
// simulation-bound algorithm in Figure 5 (67% simulation).
type A2C struct {
	cfg Config
	b   *backend.Backend
	rng *rand.Rand

	policy *backend.Network
	value  *backend.Network
	opt    *nn.Adam

	logStd   float64
	nEnvs    int
	rollouts []Rollout
	// pending carries value/logp per env from ActBatch to Observe.
	pendingValues []float64
	pendingLogps  []float64
	// boot holds the next-observation per env for value bootstrapping.
	bootObs [][]float64

	gamma, entCoef float64
}

// a2cNumEnvs is stable-baselines' default vectorization for A2C.
const a2cNumEnvs = 16

// NewA2C builds an A2C agent (discrete or continuous).
func NewA2C(cfg Config) *A2C {
	validateDims("A2C", cfg.ObsDim, cfg.ActDim)
	rng := rand.New(rand.NewSource(cfg.Seed))
	return &A2C{
		cfg:           cfg,
		b:             cfg.Backend,
		rng:           rng,
		policy:        backend.NewNetwork(rng, "policy", cfg.sizes(cfg.ObsDim, cfg.ActDim), nn.Tanh, nn.Identity),
		value:         backend.NewNetwork(rng, "value", cfg.sizes(cfg.ObsDim, 1), nn.Tanh, nn.Identity),
		opt:           nn.NewAdam(7e-4),
		logStd:        math.Log(0.5),
		nEnvs:         a2cNumEnvs,
		rollouts:      make([]Rollout, a2cNumEnvs),
		pendingValues: make([]float64, a2cNumEnvs),
		pendingLogps:  make([]float64, a2cNumEnvs),
		bootObs:       make([][]float64, a2cNumEnvs),
		gamma:         0.99,
		entCoef:       0.01,
	}
}

// Name implements Agent.
func (a *A2C) Name() string { return "A2C" }

// OnPolicy implements Agent.
func (a *A2C) OnPolicy() bool { return true }

// NumEnvs implements Agent.
func (a *A2C) NumEnvs() int { return a.nEnvs }

// CollectSteps implements Agent: stable-baselines' n_steps=5 per env.
func (a *A2C) CollectSteps() int {
	if a.cfg.CollectStepsOverride > 0 {
		return a.cfg.CollectStepsOverride
	}
	return 5
}

// UpdatesPerCollect implements Agent: one update consumes the rollout.
func (a *A2C) UpdatesPerCollect() int { return 1 }

// ActBatch implements Agent: one batched policy+value inference for all
// environments, then per-env sampling in high-level code.
func (a *A2C) ActBatch(obs [][]float64) [][]float64 {
	x := obsTensor(obs)
	var out, val *nn.Tensor
	a.b.Compute("a2c/predict", backend.KindInference, func(c *backend.Comp) {
		c.Feed(x)
		out = c.Forward(a.policy, x)
		val = c.Forward(a.value, x)
		c.Fetch(out)
		c.Fetch(val)
	})
	acts := make([][]float64, len(obs))
	for e := range obs {
		a.pendingValues[e] = val.At(e, 0)
		acts[e], a.pendingLogps[e] = a.sample(out, e)
	}
	return acts
}

// sample draws an action for row e of the policy output.
func (a *A2C) sample(out *nn.Tensor, e int) ([]float64, float64) {
	if a.cfg.Discrete {
		probs := nn.Softmax(out)
		act := sampleCategorical(a.rng, probs.Row(e))
		return []float64{float64(act)}, math.Log(probs.At(e, act) + 1e-12)
	}
	mean := out.Row(e)
	std := math.Exp(a.logStd)
	act := make([]float64, len(mean))
	var logp float64
	const log2pi = 1.8378770664093453
	for i, m := range mean {
		act[i] = m + std*a.rng.NormFloat64()
		z := (act[i] - m) / std
		logp += -0.5*z*z - a.logStd - 0.5*log2pi
		// Clip to the action space, as stable-baselines' VecEnv does
		// before stepping the simulator.
		act[i] = clipf(act[i], 1)
	}
	return act, logp
}

// Observe implements Agent.
func (a *A2C) Observe(env int, t Transition) {
	a.rollouts[env].Add(t.Obs, t.Act, t.Reward, t.Done, a.pendingValues[env], a.pendingLogps[env])
	a.bootObs[env] = t.Next
}

// Update implements Agent: one combined policy+value gradient step over all
// environments' rollouts.
func (a *A2C) Update() {
	total := 0
	for e := range a.rollouts {
		total += a.rollouts[e].Len()
	}
	if total == 0 {
		return
	}
	// Batched value bootstrap for every env's final observation.
	xBoot := obsTensor(a.bootObs)
	var bootVal *nn.Tensor
	a.b.Compute("a2c/bootstrap", backend.KindInference, func(c *backend.Comp) {
		c.Feed(xBoot)
		bootVal = c.Forward(a.value, xBoot)
		c.Fetch(bootVal)
	})

	// Per-env GAE, concatenated into one training batch.
	var allObs [][]float64
	var allActs [][]float64
	var allAdv, allRet []float64
	for e := range a.rollouts {
		ro := &a.rollouts[e]
		n := ro.Len()
		if n == 0 {
			continue
		}
		if ro.Dones[n-1] {
			ro.LastValue = 0
		} else {
			ro.LastValue = bootVal.At(e, 0)
		}
		adv, ret := ro.GAE(a.gamma, 1.0) // A2C: λ=1 (n-step returns)
		allObs = append(allObs, ro.Obs...)
		allActs = append(allActs, ro.Acts...)
		allAdv = append(allAdv, adv...)
		allRet = append(allRet, ret...)
	}

	x := obsTensor(allObs)
	a.b.Session().Python(pythonMinibatchCost(total))
	a.b.Compute("a2c/train_step", backend.KindBackprop, func(c *backend.Comp) {
		c.Feed(x)
		c.ZeroGrad(a.policy)
		c.ZeroGrad(a.value)
		out := c.Forward(a.policy, x)
		var pgrad *nn.Tensor
		c.HostLoss("a2c/pg_loss", func() {
			pgrad = a.policyGrad(out, allActs, allAdv)
		})
		c.Backward(a.policy, pgrad)

		pred := c.Forward(a.value, x)
		var vgrad *nn.Tensor
		c.HostLoss("a2c/value_loss", func() {
			target := nn.NewTensor(total, 1)
			for i, r := range allRet {
				target.Set(i, 0, r)
			}
			_, vgrad = nn.MSELoss(pred, target)
			vgrad.Scale(0.5)
		})
		c.Backward(a.value, vgrad)

		c.HostLoss("a2c/clip_grads", func() {
			nn.ClipGradByGlobalNorm(append(a.policy.MLP.Params(), a.value.MLP.Params()...), 0.5)
		})
		c.AdamStepFused(a.policy, a.opt)
		c.AdamStepFused(a.value, a.opt)
	})
	for e := range a.rollouts {
		a.rollouts[e].Reset()
	}
}

// policyGrad computes dLoss/d(policy output) for the concatenated batch.
func (a *A2C) policyGrad(out *nn.Tensor, acts [][]float64, adv []float64) *nn.Tensor {
	n := len(acts)
	if a.cfg.Discrete {
		actions := make([]int, n)
		for i, act := range acts {
			actions[i] = int(act[0])
		}
		_, grad := nn.PolicyGradientLoss(out, actions, adv, a.entCoef)
		return grad
	}
	// Continuous: dL/dmean = −adv·(a−mean)/σ² / n.
	grad := nn.NewTensor(n, a.cfg.ActDim)
	sigma2 := math.Exp(2 * a.logStd)
	for i := 0; i < n; i++ {
		for j := 0; j < a.cfg.ActDim; j++ {
			grad.Set(i, j, -adv[i]*(acts[i][j]-out.At(i, j))/sigma2/float64(n))
		}
	}
	return grad
}

func sampleCategorical(rng *rand.Rand, probs []float64) int {
	r := rng.Float64()
	var cum float64
	for i, p := range probs {
		cum += p
		if r < cum {
			return i
		}
	}
	return len(probs) - 1
}
