package rl

import (
	"math"
	"math/rand"

	"repro/internal/backend"
	"repro/internal/nn"
)

// SAC is soft actor-critic: an off-policy maximum-entropy actor-critic.
// The policy is a squashed Gaussian — the network outputs the pre-squash
// mean, a fixed diagonal standard deviation supplies exploration, and
// actions are tanh(u). Twin critics with entropy-regularized targets follow
// Haarnoja et al.; the temperature α is fixed.
type SAC struct {
	cfg Config
	b   *backend.Backend
	rng *rand.Rand

	actor                  *backend.Network
	critic1, critic2       *backend.Network
	critic1Target          *backend.Network
	critic2Target          *backend.Network
	actorOpt, criticOpt    *nn.Adam
	logStd                 float64
	alpha                  float64
	replay                 *ReplayBuffer
	steps, updates, warmup int
	tau, gamma             float64
}

// NewSAC builds a SAC agent.
func NewSAC(cfg Config) *SAC {
	validateDims("SAC", cfg.ObsDim, cfg.ActDim)
	rng := rand.New(rand.NewSource(cfg.Seed))
	actorSizes := cfg.sizes(cfg.ObsDim, cfg.ActDim)
	criticSizes := cfg.sizes(cfg.ObsDim+cfg.ActDim, 1)
	s := &SAC{
		cfg:       cfg,
		b:         cfg.Backend,
		rng:       rng,
		actor:     backend.NewNetwork(rng, "actor", actorSizes, nn.ReLU, nn.Identity),
		critic1:   backend.NewNetwork(rng, "critic1", criticSizes, nn.ReLU, nn.Identity),
		critic2:   backend.NewNetwork(rng, "critic2", criticSizes, nn.ReLU, nn.Identity),
		actorOpt:  nn.NewAdam(3e-4),
		criticOpt: nn.NewAdam(3e-4),
		logStd:    math.Log(0.3),
		alpha:     0.2,
		replay:    NewReplayBuffer(100_000, cfg.Seed+1),
		warmup:    100,
		tau:       0.005,
		gamma:     0.99,
	}
	s.critic1Target = backend.NewNetwork(rng, "critic1_target", criticSizes, nn.ReLU, nn.Identity)
	s.critic2Target = backend.NewNetwork(rng, "critic2_target", criticSizes, nn.ReLU, nn.Identity)
	s.critic1.MLP.CopyTo(s.critic1Target.MLP)
	s.critic2.MLP.CopyTo(s.critic2Target.MLP)
	return s
}

// Name implements Agent.
func (s *SAC) Name() string { return "SAC" }

// OnPolicy implements Agent.
func (s *SAC) OnPolicy() bool { return false }

// CollectSteps implements Agent.
func (s *SAC) CollectSteps() int {
	if s.cfg.CollectStepsOverride > 0 {
		return s.cfg.CollectStepsOverride
	}
	return 100
}

// UpdatesPerCollect implements Agent.
func (s *SAC) UpdatesPerCollect() int {
	if s.replay.Len() < s.warmup {
		return 0
	}
	return s.CollectSteps() / 2
}

// samplePolicy draws u ~ N(mean, σ), a = tanh(u); returns a and logπ(a|s).
func (s *SAC) samplePolicy(mean []float64) (act []float64, logp float64) {
	std := math.Exp(s.logStd)
	act = make([]float64, len(mean))
	const log2pi = 1.8378770664093453
	for i, m := range mean {
		u := m + std*s.rng.NormFloat64()
		a := math.Tanh(u)
		act[i] = a
		z := (u - m) / std
		logp += -0.5*z*z - s.logStd - 0.5*log2pi
		logp -= math.Log(1 - a*a + 1e-6) // tanh change of variables
	}
	return act, logp
}

// Act implements Agent.
func (s *SAC) Act(obs []float64) []float64 {
	x := obsTensor([][]float64{obs})
	var mean *nn.Tensor
	s.b.Compute("sac/predict", backend.KindInference, func(c *backend.Comp) {
		c.Feed(x)
		mean = c.Forward(s.actor, x)
		c.Fetch(mean)
	})
	act, _ := s.samplePolicy(mean.Row(0))
	return act
}

// NumEnvs implements Agent: SAC collects from a single environment.
func (s *SAC) NumEnvs() int { return 1 }

// ActBatch implements Agent.
func (s *SAC) ActBatch(obs [][]float64) [][]float64 {
	return [][]float64{s.Act(obs[0])}
}

// Observe implements Agent.
func (s *SAC) Observe(_ int, t Transition) {
	s.replay.Add(t)
	s.steps++
}

// Update implements Agent: entropy-regularized twin-critic update and a
// reparameterized actor update.
func (s *SAC) Update() {
	batchSize := s.cfg.batch()
	s.b.Session().Python(pythonMinibatchCost(batchSize))
	batch := s.replay.Sample(batchSize)

	obs := make([][]float64, batchSize)
	acts := make([][]float64, batchSize)
	next := make([][]float64, batchSize)
	for i, t := range batch {
		obs[i] = t.Obs
		acts[i] = t.Act
		next[i] = t.Next
	}
	xNext := obsTensor(next)
	xObs := obsTensor(obs)
	critIn := concatTensor(obs, acts)

	s.b.Compute("sac/critic_train", backend.KindBackprop, func(c *backend.Comp) {
		c.Feed(critIn)
		c.Feed(xNext)
		meanNext := c.Forward(s.actor, xNext)
		var targetIn *nn.Tensor
		logps := make([]float64, batchSize)
		c.HostLoss("sac/sample_next", func() {
			nextActs := make([][]float64, batchSize)
			for i := 0; i < batchSize; i++ {
				a, lp := s.samplePolicy(meanNext.Row(i))
				nextActs[i] = a
				logps[i] = lp
			}
			targetIn = concatTensor(next, nextActs)
		})
		q1n := c.Forward(s.critic1Target, targetIn)
		q2n := c.Forward(s.critic2Target, targetIn)
		var target *nn.Tensor
		c.HostLoss("sac/soft_target", func() {
			target = nn.NewTensor(batchSize, 1)
			for i, t := range batch {
				y := t.Reward
				if !t.Done {
					q := math.Min(q1n.At(i, 0), q2n.At(i, 0))
					y += s.gamma * (q - s.alpha*logps[i])
				}
				target.Set(i, 0, y)
			}
		})
		c.ZeroGrad(s.critic1)
		pred1 := c.Forward(s.critic1, critIn)
		var grad1 *nn.Tensor
		c.HostLoss("sac/mse1", func() { _, grad1 = nn.MSELoss(pred1, target) })
		c.Backward(s.critic1, grad1)
		c.AdamStepFused(s.critic1, s.criticOpt)

		c.ZeroGrad(s.critic2)
		pred2 := c.Forward(s.critic2, critIn)
		var grad2 *nn.Tensor
		c.HostLoss("sac/mse2", func() { _, grad2 = nn.MSELoss(pred2, target) })
		c.Backward(s.critic2, grad2)
		c.AdamStepFused(s.critic2, s.criticOpt)
	})

	s.b.Compute("sac/actor_train", backend.KindBackprop, func(c *backend.Comp) {
		c.Feed(xObs)
		c.ZeroGrad(s.actor)
		c.ZeroGrad(s.critic1)
		mean := c.Forward(s.actor, xObs)
		// Reparameterized sample: u = mean + σε, a = tanh(u).
		std := math.Exp(s.logStd)
		us := nn.NewTensor(batchSize, s.cfg.ActDim)
		var actorIn *nn.Tensor
		c.HostLoss("sac/reparam", func() {
			piActs := make([][]float64, batchSize)
			for i := 0; i < batchSize; i++ {
				row := make([]float64, s.cfg.ActDim)
				for j := 0; j < s.cfg.ActDim; j++ {
					u := mean.At(i, j) + std*s.rng.NormFloat64()
					us.Set(i, j, u)
					row[j] = math.Tanh(u)
				}
				piActs[i] = row
			}
			actorIn = concatTensor(obs, piActs)
		})
		c.Forward(s.critic1, actorIn)
		var up *nn.Tensor
		c.HostLoss("sac/q_grad", func() {
			up = nn.NewTensor(batchSize, 1)
			up.Fill(-1.0 / float64(batchSize))
		})
		dIn := c.Backward(s.critic1, up)
		var dMean *nn.Tensor
		c.HostLoss("sac/actor_grad", func() {
			// dObj/dmean = −dQ/da·(1−tanh²u) + α·2·tanh(u)/N
			// (the entropy term through the tanh log-det; the
			// Gaussian self-term cancels under reparameterization).
			dAct := splitCriticInputGrad(dIn, s.cfg.ObsDim)
			dMean = nn.NewTensor(batchSize, s.cfg.ActDim)
			for i := 0; i < batchSize; i++ {
				for j := 0; j < s.cfg.ActDim; j++ {
					th := math.Tanh(us.At(i, j))
					g := dAct.At(i, j)*(1-th*th) +
						s.alpha*2*th/float64(batchSize)
					dMean.Set(i, j, g)
				}
			}
		})
		c.Backward(s.actor, dMean)
		c.AdamStepFused(s.actor, s.actorOpt)
		c.PolyakUpdate(s.critic1, s.critic1Target, s.tau)
		c.PolyakUpdate(s.critic2, s.critic2Target, s.tau)
	})
	s.updates++
}
