package rl

import (
	"math"
	"math/rand"

	"repro/internal/backend"
	"repro/internal/nn"
)

// PPO2 is proximal policy optimization with a clipped surrogate objective,
// stable-baselines' PPO2 implementation: long vectorized rollouts followed
// by several epochs of minibatch updates. Between A2C's tiny rollouts and
// the off-policy algorithms' per-step updates, PPO2 lands in the middle of
// Figure 5's simulation-bound spectrum (46.3% simulation).
type PPO2 struct {
	cfg Config
	b   *backend.Backend
	rng *rand.Rand

	policy *backend.Network
	value  *backend.Network
	opt    *nn.Adam

	logStd   float64
	nEnvs    int
	rollouts []Rollout

	pendingValues []float64
	pendingLogps  []float64
	bootObs       [][]float64

	gamma, lambda, clip, entCoef float64
	epochs, minibatch            int
}

// ppoNumEnvs is the vectorization PPO2 collects with on continuous-control
// tasks; ppoAtariEnvs/ppoAtariEpochs are the Atari-zoo tuning for discrete
// tasks — more parallel emulators and fewer optimization epochs, the
// "small number of gradient updates compared to the number of simulator
// invocations" behind Pong's 74.2% simulation share (paper Appendix B.1).
const (
	ppoNumEnvs     = 4
	ppoAtariEnvs   = 8
	ppoAtariEpochs = 2
)

// NewPPO2 builds a PPO2 agent (discrete or continuous).
func NewPPO2(cfg Config) *PPO2 {
	validateDims("PPO2", cfg.ObsDim, cfg.ActDim)
	rng := rand.New(rand.NewSource(cfg.Seed))
	p := &PPO2{
		cfg:           cfg,
		b:             cfg.Backend,
		rng:           rng,
		policy:        backend.NewNetwork(rng, "policy", cfg.sizes(cfg.ObsDim, cfg.ActDim), nn.Tanh, nn.Identity),
		value:         backend.NewNetwork(rng, "value", cfg.sizes(cfg.ObsDim, 1), nn.Tanh, nn.Identity),
		opt:           nn.NewAdam(3e-4),
		logStd:        math.Log(0.5),
		nEnvs:         ppoNumEnvs,
		rollouts:      make([]Rollout, ppoNumEnvs),
		pendingValues: make([]float64, ppoNumEnvs),
		pendingLogps:  make([]float64, ppoNumEnvs),
		bootObs:       make([][]float64, ppoNumEnvs),
		gamma:         0.99,
		lambda:        0.95,
		clip:          0.2,
		entCoef:       0.0,
		epochs:        4,
		minibatch:     64,
	}
	if cfg.Discrete {
		p.nEnvs = ppoAtariEnvs
		p.epochs = ppoAtariEpochs
		p.rollouts = make([]Rollout, p.nEnvs)
		p.pendingValues = make([]float64, p.nEnvs)
		p.pendingLogps = make([]float64, p.nEnvs)
		p.bootObs = make([][]float64, p.nEnvs)
	}
	return p
}

// Name implements Agent.
func (p *PPO2) Name() string { return "PPO2" }

// OnPolicy implements Agent.
func (p *PPO2) OnPolicy() bool { return true }

// NumEnvs implements Agent.
func (p *PPO2) NumEnvs() int { return p.nEnvs }

// CollectSteps implements Agent: n_steps=128 per env.
func (p *PPO2) CollectSteps() int {
	if p.cfg.CollectStepsOverride > 0 {
		return p.cfg.CollectStepsOverride
	}
	return 128
}

// UpdatesPerCollect implements Agent: one update pass (internally several
// epochs of minibatches) consumes the rollout.
func (p *PPO2) UpdatesPerCollect() int { return 1 }

// ActBatch implements Agent.
func (p *PPO2) ActBatch(obs [][]float64) [][]float64 {
	x := obsTensor(obs)
	var out, val *nn.Tensor
	p.b.Compute("ppo/predict", backend.KindInference, func(c *backend.Comp) {
		c.Feed(x)
		out = c.Forward(p.policy, x)
		val = c.Forward(p.value, x)
		c.Fetch(out)
		c.Fetch(val)
	})
	acts := make([][]float64, len(obs))
	for e := range obs {
		p.pendingValues[e] = val.At(e, 0)
		acts[e], p.pendingLogps[e] = p.sample(out, e)
	}
	return acts
}

func (p *PPO2) sample(out *nn.Tensor, e int) ([]float64, float64) {
	if p.cfg.Discrete {
		probs := nn.Softmax(out)
		act := sampleCategorical(p.rng, probs.Row(e))
		return []float64{float64(act)}, math.Log(probs.At(e, act) + 1e-12)
	}
	mean := out.Row(e)
	std := math.Exp(p.logStd)
	act := make([]float64, len(mean))
	var logp float64
	const log2pi = 1.8378770664093453
	for i, m := range mean {
		act[i] = m + std*p.rng.NormFloat64()
		z := (act[i] - m) / std
		logp += -0.5*z*z - p.logStd - 0.5*log2pi
		// Clip to the action space, as stable-baselines' VecEnv does
		// before stepping the simulator.
		act[i] = clipf(act[i], 1)
	}
	return act, logp
}

// Observe implements Agent.
func (p *PPO2) Observe(env int, t Transition) {
	p.rollouts[env].Add(t.Obs, t.Act, t.Reward, t.Done, p.pendingValues[env], p.pendingLogps[env])
	p.bootObs[env] = t.Next
}

// flatBatch is the concatenated rollout PPO2 optimizes over.
type flatBatch struct {
	obs   [][]float64
	acts  [][]float64
	logps []float64
	adv   []float64
	ret   []float64
}

// Update implements Agent: GAE, then epochs × minibatches of clipped
// surrogate updates.
func (p *PPO2) Update() {
	total := 0
	for e := range p.rollouts {
		total += p.rollouts[e].Len()
	}
	if total == 0 {
		return
	}
	xBoot := obsTensor(p.bootObs)
	var bootVal *nn.Tensor
	p.b.Compute("ppo/bootstrap", backend.KindInference, func(c *backend.Comp) {
		c.Feed(xBoot)
		bootVal = c.Forward(p.value, xBoot)
		c.Fetch(bootVal)
	})

	var fb flatBatch
	for e := range p.rollouts {
		ro := &p.rollouts[e]
		n := ro.Len()
		if n == 0 {
			continue
		}
		if ro.Dones[n-1] {
			ro.LastValue = 0
		} else {
			ro.LastValue = bootVal.At(e, 0)
		}
		adv, ret := ro.GAE(p.gamma, p.lambda)
		fb.obs = append(fb.obs, ro.Obs...)
		fb.acts = append(fb.acts, ro.Acts...)
		fb.logps = append(fb.logps, ro.LogPs...)
		fb.adv = append(fb.adv, adv...)
		fb.ret = append(fb.ret, ret...)
	}
	NormalizeAdvantages(fb.adv)

	idx := make([]int, total)
	for i := range idx {
		idx[i] = i
	}
	for epoch := 0; epoch < p.epochs; epoch++ {
		p.rng.Shuffle(total, func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		for lo := 0; lo < total; lo += p.minibatch {
			hi := lo + p.minibatch
			if hi > total {
				hi = total
			}
			p.updateMinibatch(&fb, idx[lo:hi])
		}
	}
	for e := range p.rollouts {
		p.rollouts[e].Reset()
	}
}

func (p *PPO2) updateMinibatch(fb *flatBatch, idx []int) {
	m := len(idx)
	obs := make([][]float64, m)
	for i, id := range idx {
		obs[i] = fb.obs[id]
	}
	x := obsTensor(obs)
	p.b.Session().Python(pythonMinibatchCost(m))
	p.b.Compute("ppo/train_step", backend.KindBackprop, func(c *backend.Comp) {
		c.Feed(x)
		c.ZeroGrad(p.policy)
		c.ZeroGrad(p.value)
		out := c.Forward(p.policy, x)
		var pgrad *nn.Tensor
		c.HostLoss("ppo/clip_loss", func() {
			pgrad = p.clippedGrad(out, fb, idx)
		})
		c.Backward(p.policy, pgrad)

		pred := c.Forward(p.value, x)
		var vgrad *nn.Tensor
		c.HostLoss("ppo/value_loss", func() {
			target := nn.NewTensor(m, 1)
			for i, id := range idx {
				target.Set(i, 0, fb.ret[id])
			}
			_, vgrad = nn.MSELoss(pred, target)
			vgrad.Scale(0.5)
		})
		c.Backward(p.value, vgrad)

		c.HostLoss("ppo/clip_grads", func() {
			nn.ClipGradByGlobalNorm(append(p.policy.MLP.Params(), p.value.MLP.Params()...), 0.5)
		})
		c.AdamStepFused(p.policy, p.opt)
		c.AdamStepFused(p.value, p.opt)
	})
}

// clippedGrad computes dL/d(policy output) for the clipped surrogate.
func (p *PPO2) clippedGrad(out *nn.Tensor, fb *flatBatch, idx []int) *nn.Tensor {
	m := len(idx)
	grad := nn.NewTensor(m, p.cfg.ActDim)
	if p.cfg.Discrete {
		logp := nn.LogSoftmax(out)
		probs := nn.Softmax(out)
		for i, id := range idx {
			a := int(fb.acts[id][0])
			ratio := math.Exp(logp.At(i, a) - fb.logps[id])
			if clippedOut(ratio, fb.adv[id], p.clip) {
				continue
			}
			// d(−ratio·A)/dlogit_j = −A·ratio·(1[j=a] − p_j)
			for j := 0; j < p.cfg.ActDim; j++ {
				ind := 0.0
				if j == a {
					ind = 1
				}
				grad.Set(i, j, -fb.adv[id]*ratio*(ind-probs.At(i, j))/float64(m))
			}
		}
		return grad
	}
	sigma2 := math.Exp(2 * p.logStd)
	const log2pi = 1.8378770664093453
	for i, id := range idx {
		var logp float64
		for j := 0; j < p.cfg.ActDim; j++ {
			z := (fb.acts[id][j] - out.At(i, j)) / math.Exp(p.logStd)
			logp += -0.5*z*z - p.logStd - 0.5*log2pi
		}
		ratio := math.Exp(logp - fb.logps[id])
		if clippedOut(ratio, fb.adv[id], p.clip) {
			continue
		}
		// d(−ratio·A)/dmean_j = −A·ratio·(a_j−mean_j)/σ²
		for j := 0; j < p.cfg.ActDim; j++ {
			grad.Set(i, j, -fb.adv[id]*ratio*(fb.acts[id][j]-out.At(i, j))/sigma2/float64(m))
		}
	}
	return grad
}

// clippedOut reports whether the clipped branch of the PPO objective is
// active (gradient zero).
func clippedOut(ratio, adv, clip float64) bool {
	if adv >= 0 {
		return ratio > 1+clip
	}
	return ratio < 1-clip
}
