package rl

import (
	"math/rand"

	"repro/internal/backend"
	"repro/internal/nn"
)

// TD3 is twin-delayed DDPG: two critics with clipped double-Q targets,
// target-policy smoothing, and a delayed actor update. Its driver performs
// 1000 consecutive simulator steps per collection segment — the
// hyperparameter whose contrast with DDPG's 100 explains the paper's F.5
// Autograph anomaly.
type TD3 struct {
	cfg Config
	b   *backend.Backend
	rng *rand.Rand

	actor, actorTarget     *backend.Network
	critic1, critic1Target *backend.Network
	critic2, critic2Target *backend.Network
	actorOpt               *nn.Adam
	criticOpt              *nn.Adam

	replay      *ReplayBuffer
	steps       int
	updates     int
	warmup      int
	noise       float64
	targetNoise float64
	noiseClip   float64
	policyDelay int
	tau         float64
	gamma       float64
}

// NewTD3 builds a TD3 agent.
func NewTD3(cfg Config) *TD3 {
	validateDims("TD3", cfg.ObsDim, cfg.ActDim)
	rng := rand.New(rand.NewSource(cfg.Seed))
	actorSizes := cfg.sizes(cfg.ObsDim, cfg.ActDim)
	criticSizes := cfg.sizes(cfg.ObsDim+cfg.ActDim, 1)
	t := &TD3{
		cfg:         cfg,
		b:           cfg.Backend,
		rng:         rng,
		actor:       backend.NewNetwork(rng, "actor", actorSizes, nn.ReLU, nn.Tanh),
		critic1:     backend.NewNetwork(rng, "critic1", criticSizes, nn.ReLU, nn.Identity),
		critic2:     backend.NewNetwork(rng, "critic2", criticSizes, nn.ReLU, nn.Identity),
		actorOpt:    nn.NewAdam(1e-4),
		criticOpt:   nn.NewAdam(1e-3),
		replay:      NewReplayBuffer(100_000, cfg.Seed+1),
		warmup:      100,
		noise:       0.1,
		targetNoise: 0.2,
		noiseClip:   0.5,
		policyDelay: 2,
		tau:         0.005,
		gamma:       0.99,
	}
	t.actorTarget = backend.NewNetwork(rng, "actor_target", actorSizes, nn.ReLU, nn.Tanh)
	t.critic1Target = backend.NewNetwork(rng, "critic1_target", criticSizes, nn.ReLU, nn.Identity)
	t.critic2Target = backend.NewNetwork(rng, "critic2_target", criticSizes, nn.ReLU, nn.Identity)
	t.actor.MLP.CopyTo(t.actorTarget.MLP)
	t.critic1.MLP.CopyTo(t.critic1Target.MLP)
	t.critic2.MLP.CopyTo(t.critic2Target.MLP)
	return t
}

// Name implements Agent.
func (t *TD3) Name() string { return "TD3" }

// OnPolicy implements Agent.
func (t *TD3) OnPolicy() bool { return false }

// CollectSteps implements Agent (paper F.5: TD3 uses 1000).
func (t *TD3) CollectSteps() int {
	if t.cfg.CollectStepsOverride > 0 {
		return t.cfg.CollectStepsOverride
	}
	return 1000
}

// UpdatesPerCollect implements Agent.
func (t *TD3) UpdatesPerCollect() int {
	if t.replay.Len() < t.warmup {
		return 0
	}
	return t.CollectSteps() / 2
}

// Act implements Agent.
func (t *TD3) Act(obs []float64) []float64 {
	x := obsTensor([][]float64{obs})
	var a *nn.Tensor
	t.b.Compute("td3/predict", backend.KindInference, func(c *backend.Comp) {
		c.Feed(x)
		a = c.Forward(t.actor, x)
		c.Fetch(a)
	})
	return gaussianNoise(t.rng, a.Row(0), t.noise)
}

// NumEnvs implements Agent: TD3 collects from a single environment.
func (t *TD3) NumEnvs() int { return 1 }

// ActBatch implements Agent.
func (t *TD3) ActBatch(obs [][]float64) [][]float64 {
	return [][]float64{t.Act(obs[0])}
}

// Observe implements Agent.
func (t *TD3) Observe(_ int, tr Transition) {
	t.replay.Add(tr)
	t.steps++
}

// Update implements Agent: twin-critic update, delayed actor update.
func (t *TD3) Update() {
	batchSize := t.cfg.batch()
	t.b.Session().Python(pythonMinibatchCost(batchSize))
	batch := t.replay.Sample(batchSize)

	obs := make([][]float64, batchSize)
	acts := make([][]float64, batchSize)
	next := make([][]float64, batchSize)
	for i, tr := range batch {
		obs[i] = tr.Obs
		acts[i] = tr.Act
		next[i] = tr.Next
	}
	xNext := obsTensor(next)
	xObs := obsTensor(obs)
	critIn := concatTensor(obs, acts)

	t.b.Compute("td3/critic_train", backend.KindBackprop, func(c *backend.Comp) {
		c.Feed(critIn)
		c.Feed(xNext)
		// Smoothed target action: clip(π'(s') + clip(ε, ±c), ±1).
		aNext := c.Forward(t.actorTarget, xNext)
		var targetIn *nn.Tensor
		c.HostLoss("td3/smooth_target", func() {
			nextActs := make([][]float64, batchSize)
			for i := 0; i < batchSize; i++ {
				row := append([]float64(nil), aNext.Row(i)...)
				for j := range row {
					eps := clipf(t.rng.NormFloat64()*t.targetNoise, t.noiseClip)
					row[j] = clipf(row[j]+eps, 1)
				}
				nextActs[i] = row
			}
			targetIn = concatTensor(next, nextActs)
		})
		q1n := c.Forward(t.critic1Target, targetIn)
		q2n := c.Forward(t.critic2Target, targetIn)
		var target *nn.Tensor
		c.HostLoss("td3/min_target", func() {
			target = nn.NewTensor(batchSize, 1)
			for i, tr := range batch {
				y := tr.Reward
				if !tr.Done {
					q := q1n.At(i, 0)
					if q2 := q2n.At(i, 0); q2 < q {
						q = q2
					}
					y += t.gamma * q
				}
				target.Set(i, 0, y)
			}
		})
		// Clipped double-Q: both critics regress to the same target.
		c.ZeroGrad(t.critic1)
		pred1 := c.Forward(t.critic1, critIn)
		var grad1 *nn.Tensor
		c.HostLoss("td3/mse1", func() { _, grad1 = nn.MSELoss(pred1, target) })
		c.Backward(t.critic1, grad1)
		c.AdamStepFused(t.critic1, t.criticOpt)

		c.ZeroGrad(t.critic2)
		pred2 := c.Forward(t.critic2, critIn)
		var grad2 *nn.Tensor
		c.HostLoss("td3/mse2", func() { _, grad2 = nn.MSELoss(pred2, target) })
		c.Backward(t.critic2, grad2)
		c.AdamStepFused(t.critic2, t.criticOpt)
	})

	t.updates++
	if t.updates%t.policyDelay != 0 {
		return
	}
	t.b.Compute("td3/actor_train", backend.KindBackprop, func(c *backend.Comp) {
		c.Feed(xObs)
		c.ZeroGrad(t.actor)
		c.ZeroGrad(t.critic1)
		aPred := c.Forward(t.actor, xObs)
		var actorIn *nn.Tensor
		c.HostLoss("td3/concat_pi", func() {
			piActs := make([][]float64, batchSize)
			for i := 0; i < batchSize; i++ {
				piActs[i] = aPred.Row(i)
			}
			actorIn = concatTensor(obs, piActs)
		})
		c.Forward(t.critic1, actorIn)
		var up *nn.Tensor
		c.HostLoss("td3/actor_grad", func() {
			up = nn.NewTensor(batchSize, 1)
			up.Fill(-1.0 / float64(batchSize))
		})
		dIn := c.Backward(t.critic1, up)
		var dAct *nn.Tensor
		c.HostLoss("td3/split_grad", func() {
			dAct = splitCriticInputGrad(dIn, t.cfg.ObsDim)
		})
		c.Backward(t.actor, dAct)
		c.AdamStepFused(t.actor, t.actorOpt)
		c.PolyakUpdate(t.actor, t.actorTarget, t.tau)
		c.PolyakUpdate(t.critic1, t.critic1Target, t.tau)
		c.PolyakUpdate(t.critic2, t.critic2Target, t.tau)
	})
}

func clipf(v, lim float64) float64 {
	if v > lim {
		return lim
	}
	if v < -lim {
		return -lim
	}
	return v
}
