package rl

import (
	"math/rand"

	"repro/internal/backend"
	"repro/internal/nn"
	"repro/internal/vclock"
)

// Agent is the interface every algorithm implements; the workloads package
// drives agents through the paper's annotated training loop (inference →
// simulation → backpropagation).
type Agent interface {
	// Name returns the algorithm name as the paper writes it.
	Name() string
	// OnPolicy reports whether the algorithm is on-policy (A2C, PPO2).
	OnPolicy() bool
	// NumEnvs is the number of vectorized environments the algorithm
	// collects with. stable-baselines runs on-policy algorithms over
	// vectorized environments (one batched inference serves every env's
	// step), which is why their profiles are simulation-dominated; the
	// off-policy algorithms use a single environment.
	NumEnvs() int
	// ActBatch selects one action per environment, running a single
	// batched inference through the backend. len(obs) must be NumEnvs.
	ActBatch(obs [][]float64) [][]float64
	// Observe records a completed step of environment env.
	Observe(env int, t Transition)
	// CollectSteps is the number of consecutive simulator steps (per
	// env) the driver performs before entering the update phase — the
	// hyperparameter behind the paper's F.5 anomaly (TD3: 1000,
	// DDPG: 100); for on-policy algorithms it is the rollout length.
	CollectSteps() int
	// UpdatesPerCollect is how many gradient updates follow one
	// collection segment (0 while warming up).
	UpdatesPerCollect() int
	// Update performs one gradient update through the backend.
	Update()
}

// Config carries the shared construction parameters for agents.
type Config struct {
	Backend *backend.Backend
	ObsDim  int
	ActDim  int
	// Discrete marks environments with categorical actions.
	Discrete bool
	Seed     int64
	// Hidden layer sizes; nil uses the stable-baselines-style default.
	Hidden []int
	// BatchSize for off-policy minibatches; 0 uses 64.
	BatchSize int
	// UseMPIAdam selects stable-baselines' MPI-friendly CPU Adam for the
	// DDPG Graph implementation (paper F.4).
	UseMPIAdam bool
	// SeparateTargetCalls runs target-network updates as separate
	// backend calls instead of bundling them into the train step —
	// the second inefficiency F.4 calls out in stable-baselines DDPG.
	SeparateTargetCalls bool
	// CollectStepsOverride changes the consecutive-simulator-steps
	// hyperparameter (0 keeps the algorithm default). Used to reproduce
	// the paper's F.5 experiment (DDPG 100 → 1000).
	CollectStepsOverride int
}

func (c *Config) hidden() []int {
	if len(c.Hidden) > 0 {
		return c.Hidden
	}
	return []int{64, 64}
}

func (c *Config) batch() int {
	if c.BatchSize > 0 {
		return c.BatchSize
	}
	return 64
}

// sizes builds a full layer-size list: in, hidden..., out.
func (c *Config) sizes(in, out int) []int {
	s := append([]int{in}, c.hidden()...)
	return append(s, out)
}

// pythonMinibatchCost is the high-level-code cost of assembling one
// minibatch from the replay buffer — Python time by construction (paper
// §2.2: replay buffers are "sampled from by high-level code").
func pythonMinibatchCost(batch int) vclock.Dist {
	return vclock.Jittered(vclock.Duration(batch)*700*vclock.Nanosecond, 0.2)
}

// obsTensor packs observations into a batch tensor.
func obsTensor(obs [][]float64) *nn.Tensor {
	t := nn.NewTensor(len(obs), len(obs[0]))
	for i, o := range obs {
		copy(t.Row(i), o)
	}
	return t
}

// concatTensor packs [obs, act] rows for critic inputs.
func concatTensor(obs, act [][]float64) *nn.Tensor {
	t := nn.NewTensor(len(obs), len(obs[0])+len(act[0]))
	for i := range obs {
		row := t.Row(i)
		copy(row, obs[i])
		copy(row[len(obs[i]):], act[i])
	}
	return t
}

// gaussianNoise adds N(0, sigma) exploration noise and clips to [-1, 1].
func gaussianNoise(rng *rand.Rand, act []float64, sigma float64) []float64 {
	out := make([]float64, len(act))
	for i, a := range act {
		v := a + rng.NormFloat64()*sigma
		if v > 1 {
			v = 1
		} else if v < -1 {
			v = -1
		}
		out[i] = v
	}
	return out
}

// splitCriticInputGrad extracts the action part of dL/d[obs,act].
func splitCriticInputGrad(grad *nn.Tensor, obsDim int) *nn.Tensor {
	actDim := grad.Cols - obsDim
	out := nn.NewTensor(grad.Rows, actDim)
	for i := 0; i < grad.Rows; i++ {
		copy(out.Row(i), grad.Row(i)[obsDim:])
	}
	return out
}
