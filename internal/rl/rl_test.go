package rl

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/backend"
	"repro/internal/cuda"
	"repro/internal/gpu"
	"repro/internal/profiler"
	"repro/internal/sim"
	"repro/internal/trace"
)

func TestReplayBufferFIFOEviction(t *testing.T) {
	r := NewReplayBuffer(3, 1)
	for i := 0; i < 5; i++ {
		r.Add(Transition{Reward: float64(i)})
	}
	if r.Len() != 3 {
		t.Fatalf("Len = %d, want 3", r.Len())
	}
	rewards := map[float64]bool{}
	for _, tr := range r.buf {
		rewards[tr.Reward] = true
	}
	// Oldest (0, 1) evicted; 2, 3, 4 retained.
	for _, want := range []float64{2, 3, 4} {
		if !rewards[want] {
			t.Fatalf("reward %v missing after eviction: %v", want, rewards)
		}
	}
}

func TestReplayBufferSample(t *testing.T) {
	r := NewReplayBuffer(10, 2)
	for i := 0; i < 10; i++ {
		r.Add(Transition{Reward: float64(i)})
	}
	s := r.Sample(100)
	if len(s) != 100 {
		t.Fatalf("Sample returned %d", len(s))
	}
	for _, tr := range s {
		if tr.Reward < 0 || tr.Reward > 9 {
			t.Fatalf("sampled alien transition %v", tr.Reward)
		}
	}
}

func TestReplayBufferCapacityProperty(t *testing.T) {
	f := func(adds uint16, capSeed uint8) bool {
		capacity := int(capSeed)%64 + 1
		r := NewReplayBuffer(capacity, 3)
		for i := 0; i < int(adds)%500; i++ {
			r.Add(Transition{Reward: float64(i)})
		}
		want := int(adds) % 500
		if want > capacity {
			want = capacity
		}
		return r.Len() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestReplayEmptySamplePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewReplayBuffer(4, 1).Sample(1)
}

func TestGAEMatchesHandComputation(t *testing.T) {
	ro := &Rollout{}
	// Two steps, no terminations: δ_t = r + γV_{t+1} − V_t.
	ro.Add(nil, nil, 1.0, false, 0.5, 0) // V0=0.5
	ro.Add(nil, nil, 2.0, false, 1.0, 0) // V1=1.0
	ro.LastValue = 3.0
	gamma, lambda := 0.9, 0.8
	adv, ret := ro.GAE(gamma, lambda)
	d1 := 2.0 + gamma*3.0 - 1.0 // 3.7
	d0 := 1.0 + gamma*1.0 - 0.5 // 1.4
	wantA1 := d1
	wantA0 := d0 + gamma*lambda*d1
	if math.Abs(adv[1]-wantA1) > 1e-12 || math.Abs(adv[0]-wantA0) > 1e-12 {
		t.Fatalf("adv = %v, want [%v %v]", adv, wantA0, wantA1)
	}
	if math.Abs(ret[0]-(wantA0+0.5)) > 1e-12 {
		t.Fatalf("ret[0] = %v", ret[0])
	}
}

func TestGAETerminalCutsBootstrap(t *testing.T) {
	ro := &Rollout{}
	ro.Add(nil, nil, 1.0, true, 0.5, 0)
	ro.LastValue = 100 // must be ignored: episode ended
	adv, _ := ro.GAE(0.99, 0.95)
	want := 1.0 - 0.5
	if math.Abs(adv[0]-want) > 1e-12 {
		t.Fatalf("terminal adv = %v, want %v", adv[0], want)
	}
}

func TestNormalizeAdvantages(t *testing.T) {
	adv := []float64{1, 2, 3, 4}
	NormalizeAdvantages(adv)
	var mean float64
	for _, a := range adv {
		mean += a
	}
	mean /= 4
	if math.Abs(mean) > 1e-9 {
		t.Fatalf("normalized mean = %v", mean)
	}
	var varsum float64
	for _, a := range adv {
		varsum += (a - mean) * (a - mean)
	}
	if std := math.Sqrt(varsum / 4); math.Abs(std-1) > 1e-9 {
		t.Fatalf("normalized std = %v", std)
	}
	NormalizeAdvantages(nil) // must not panic
}

// newTestBackend builds a minimal profiled backend for agent smoke tests.
func newTestBackend(t *testing.T, model backend.ExecModel, seed int64) (*backend.Backend, *profiler.Profiler, *profiler.Session) {
	t.Helper()
	p := profiler.New(profiler.Options{Workload: "rl-test", Flags: trace.Uninstrumented(), Seed: seed})
	s := p.NewProcess("trainer", -1, 0)
	ctx := cuda.NewContext(s, gpu.NewDevice(-1), cuda.DefaultCosts())
	return backend.New(s, ctx, model), p, s
}

// driveAgent runs a small end-to-end loop: collect → update, repeatedly,
// with one environment instance per vectorized slot.
func driveAgent(t *testing.T, agent Agent, makeEnv func(seed int64) sim.Env, cycles int) {
	t.Helper()
	envs := make([]sim.Env, agent.NumEnvs())
	obs := make([][]float64, len(envs))
	for e := range envs {
		envs[e] = makeEnv(int64(e) + 3)
		obs[e] = envs[e].Reset()
	}
	for c := 0; c < cycles; c++ {
		n := agent.CollectSteps()
		if n > 50 {
			n = 50 // keep tests fast
		}
		for i := 0; i < n; i++ {
			acts := agent.ActBatch(obs)
			if len(acts) != len(envs) {
				t.Fatalf("ActBatch returned %d actions for %d envs", len(acts), len(envs))
			}
			for e := range envs {
				next, r, done := envs[e].Step(acts[e])
				agent.Observe(e, Transition{Obs: obs[e], Act: acts[e], Reward: r, Next: next, Done: done})
				obs[e] = next
				if done {
					obs[e] = envs[e].Reset()
				}
			}
		}
		updates := agent.UpdatesPerCollect()
		if updates > 3 {
			updates = 3
		}
		for u := 0; u < updates; u++ {
			agent.Update()
		}
	}
}

func TestAgentsSmokeOnWalker(t *testing.T) {
	for _, name := range []string{"DDPG", "TD3", "SAC", "A2C", "PPO2"} {
		t.Run(name, func(t *testing.T) {
			b, p, s := newTestBackend(t, backend.Graph, 11)
			env := sim.NewWalker2D(3)
			cfg := Config{
				Backend: b, ObsDim: env.ObsDim(), ActDim: env.ActDim(),
				Seed: 5, BatchSize: 16, Hidden: []int{16, 16},
			}
			var agent Agent
			switch name {
			case "DDPG":
				agent = NewDDPG(cfg)
			case "TD3":
				agent = NewTD3(cfg)
			case "SAC":
				agent = NewSAC(cfg)
			case "A2C":
				agent = NewA2C(cfg)
			case "PPO2":
				agent = NewPPO2(cfg)
			}
			if agent.Name() != name {
				t.Fatalf("Name = %q", agent.Name())
			}
			driveAgent(t, agent, func(seed int64) sim.Env { return sim.NewWalker2D(seed) }, 3)
			s.Close()
			tr := p.MustTrace()
			if tr.CountKind(trace.KindGPU) == 0 {
				t.Fatal("agent issued no GPU work")
			}
			// Actions must be bounded controls.
			probe := make([][]float64, agent.NumEnvs())
			for e := range probe {
				probe[e] = env.Reset()
			}
			for _, act := range agent.ActBatch(probe) {
				for _, a := range act {
					if math.IsNaN(a) || a < -1.001 || a > 1.001 {
						t.Fatalf("action out of bounds: %v", act)
					}
				}
			}
		})
	}
}

func TestDQNSmokeOnPong(t *testing.T) {
	b, p, s := newTestBackend(t, backend.Graph, 13)
	env := sim.NewPong(3)
	agent := NewDQN(Config{
		Backend: b, ObsDim: env.ObsDim(), ActDim: env.ActDim(),
		Discrete: true, Seed: 5, BatchSize: 16, Hidden: []int{16, 16},
	})
	// Replay warmup then updates.
	driveAgent(t, agent, func(seed int64) sim.Env { return sim.NewPong(seed) }, 60)
	if agent.UpdatesPerCollect() == 0 {
		t.Fatal("DQN never became update-ready")
	}
	s.Close()
	_ = p.MustTrace()
	act := agent.Act(env.Reset())
	if a := int(act[0]); a < 0 || a >= env.ActDim() {
		t.Fatalf("DQN action %d out of range", a)
	}
}

func TestDQNRejectsContinuousEnv(t *testing.T) {
	b, _, _ := newTestBackend(t, backend.Graph, 17)
	defer func() {
		if recover() == nil {
			t.Fatal("DQN accepted continuous env")
		}
	}()
	NewDQN(Config{Backend: b, ObsDim: 4, ActDim: 2, Discrete: false, Seed: 1})
}

func TestOnPolicyClassification(t *testing.T) {
	b, _, _ := newTestBackend(t, backend.Graph, 19)
	cfg := Config{Backend: b, ObsDim: 4, ActDim: 2, Seed: 1, Hidden: []int{8}}
	if NewDDPG(cfg).OnPolicy() || NewTD3(cfg).OnPolicy() || NewSAC(cfg).OnPolicy() {
		t.Fatal("off-policy algorithms misclassified")
	}
	if !NewA2C(cfg).OnPolicy() || !NewPPO2(cfg).OnPolicy() {
		t.Fatal("on-policy algorithms misclassified")
	}
}

func TestCollectStepsHyperparameters(t *testing.T) {
	b, _, _ := newTestBackend(t, backend.Graph, 23)
	cfg := Config{Backend: b, ObsDim: 4, ActDim: 2, Seed: 1, Hidden: []int{8}}
	if got := NewTD3(cfg).CollectSteps(); got != 1000 {
		t.Fatalf("TD3 CollectSteps = %d, want 1000 (paper F.5)", got)
	}
	if got := NewDDPG(cfg).CollectSteps(); got != 100 {
		t.Fatalf("DDPG CollectSteps = %d, want 100 (paper F.5)", got)
	}
	cfg.CollectStepsOverride = 1000
	if got := NewDDPG(cfg).CollectSteps(); got != 1000 {
		t.Fatalf("override ignored: %d", got)
	}
}

func TestDDPGLearnsOnToyProblem(t *testing.T) {
	// Sanity check that the actor-critic machinery optimizes: a 1-D
	// bandit where reward = −(a−0.5)². After training, the actor should
	// move its action toward 0.5 from wherever it started.
	b, _, s := newTestBackend(t, backend.Graph, 29)
	agent := NewDDPG(Config{
		Backend: b, ObsDim: 1, ActDim: 1, Seed: 7, BatchSize: 32, Hidden: []int{32, 32},
	})
	obs := []float64{0}
	before := agent.actorMean(obs)
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 600; i++ {
		act := []float64{rng.Float64()*2 - 1} // exploratory coverage
		r := -(act[0] - 0.5) * (act[0] - 0.5)
		agent.Observe(0, Transition{Obs: obs, Act: act, Reward: r, Next: obs, Done: true})
	}
	for i := 0; i < 150; i++ {
		agent.Update()
	}
	after := agent.actorMean(obs)
	s.Close()
	if math.Abs(after-0.5) >= math.Abs(before-0.5) {
		t.Fatalf("actor did not move toward optimum: before=%v after=%v", before, after)
	}
}

func TestGaussianNoiseClips(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		out := gaussianNoise(rng, []float64{0.99, -0.99}, 0.5)
		for _, v := range out {
			if v < -1 || v > 1 {
				t.Fatalf("noise escaped bounds: %v", v)
			}
		}
	}
}

func TestConcatAndSplit(t *testing.T) {
	obs := [][]float64{{1, 2}, {3, 4}}
	act := [][]float64{{5}, {6}}
	c := concatTensor(obs, act)
	if c.Rows != 2 || c.Cols != 3 || c.At(0, 2) != 5 || c.At(1, 0) != 3 {
		t.Fatalf("concat = %+v", c)
	}
	g := splitCriticInputGrad(c, 2)
	if g.Rows != 2 || g.Cols != 1 || g.At(0, 0) != 5 || g.At(1, 0) != 6 {
		t.Fatalf("split = %+v", g)
	}
}

func TestSampleCategoricalDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	counts := make([]int, 3)
	probs := []float64{0.2, 0.5, 0.3}
	const n = 30000
	for i := 0; i < n; i++ {
		counts[sampleCategorical(rng, probs)]++
	}
	for i, p := range probs {
		got := float64(counts[i]) / n
		if math.Abs(got-p) > 0.02 {
			t.Fatalf("category %d frequency %v, want ~%v", i, got, p)
		}
	}
}
