package rl

import (
	"math/rand"

	"repro/internal/backend"
	"repro/internal/nn"
)

// DQN is the deep Q-network algorithm (Mnih et al. 2015) the paper uses as
// its running example (§2.1): ε-greedy inference, experience replay, and
// Huber-loss Q-learning against a periodically synchronized target network.
type DQN struct {
	cfg Config
	b   *backend.Backend
	rng *rand.Rand

	q, qTarget *backend.Network
	opt        *nn.Adam
	replay     *ReplayBuffer

	steps       int
	updates     int
	warmup      int
	targetEvery int
	eps         float64
	epsMin      float64
	epsDecay    float64
}

// NewDQN builds a DQN agent for a discrete-action environment.
func NewDQN(cfg Config) *DQN {
	validateDims("DQN", cfg.ObsDim, cfg.ActDim)
	if !cfg.Discrete {
		panic("rl: DQN requires a discrete action space")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	sizes := cfg.sizes(cfg.ObsDim, cfg.ActDim)
	q := backend.NewNetwork(rng, "q", sizes, nn.ReLU, nn.Identity)
	qt := backend.NewNetwork(rng, "q_target", sizes, nn.ReLU, nn.Identity)
	q.MLP.CopyTo(qt.MLP)
	return &DQN{
		cfg:         cfg,
		b:           cfg.Backend,
		rng:         rng,
		q:           q,
		qTarget:     qt,
		opt:         nn.NewAdam(5e-4),
		replay:      NewReplayBuffer(50_000, cfg.Seed+1),
		warmup:      200,
		targetEvery: 250,
		eps:         1.0,
		epsMin:      0.05,
		epsDecay:    0.995,
	}
}

// Name implements Agent.
func (d *DQN) Name() string { return "DQN" }

// OnPolicy implements Agent.
func (d *DQN) OnPolicy() bool { return false }

// CollectSteps implements Agent: DQN trains every 4 frames.
func (d *DQN) CollectSteps() int {
	if d.cfg.CollectStepsOverride > 0 {
		return d.cfg.CollectStepsOverride
	}
	return 4
}

// UpdatesPerCollect implements Agent.
func (d *DQN) UpdatesPerCollect() int {
	if d.replay.Len() < d.warmup {
		return 0
	}
	return 1
}

// Act implements Agent: ε-greedy over the Q network.
func (d *DQN) Act(obs []float64) []float64 {
	d.eps = maxf(d.epsMin, d.eps*d.epsDecay)
	if d.rng.Float64() < d.eps {
		return []float64{float64(d.rng.Intn(d.cfg.ActDim))}
	}
	x := obsTensor([][]float64{obs})
	var qvals *nn.Tensor
	d.b.Compute("dqn/predict", backend.KindInference, func(c *backend.Comp) {
		c.Feed(x)
		qvals = c.Forward(d.q, x)
		c.Fetch(qvals)
	})
	return []float64{float64(qvals.ArgmaxRow(0))}
}

// NumEnvs implements Agent: DQN collects from a single environment.
func (d *DQN) NumEnvs() int { return 1 }

// ActBatch implements Agent.
func (d *DQN) ActBatch(obs [][]float64) [][]float64 {
	return [][]float64{d.Act(obs[0])}
}

// Observe implements Agent.
func (d *DQN) Observe(_ int, t Transition) {
	d.replay.Add(t)
	d.steps++
}

// Update implements Agent: one Huber-loss Q update on a sampled minibatch.
func (d *DQN) Update() {
	batchSize := d.cfg.batch()
	// Minibatch assembly happens in high-level code.
	d.b.Session().Python(pythonMinibatchCost(batchSize))
	batch := d.replay.Sample(batchSize)

	obs := make([][]float64, batchSize)
	next := make([][]float64, batchSize)
	for i, t := range batch {
		obs[i] = t.Obs
		next[i] = t.Next
	}
	x := obsTensor(obs)
	xn := obsTensor(next)

	d.b.Compute("dqn/train_step", backend.KindBackprop, func(c *backend.Comp) {
		c.Feed(x)
		c.Feed(xn)
		c.ZeroGrad(d.q)
		// Target values from the frozen network.
		qNext := c.Forward(d.qTarget, xn)
		pred := c.Forward(d.q, x)
		var grad *nn.Tensor
		c.HostLoss("dqn/huber", func() {
			target := pred.Clone()
			for i, t := range batch {
				y := t.Reward
				if !t.Done {
					y += 0.99 * qNext.Row(i)[qNext.ArgmaxRow(i)]
				}
				target.Set(i, int(t.Act[0]), y)
			}
			_, grad = nn.HuberLoss(pred, target)
		})
		c.Backward(d.q, grad)
		c.AdamStepFused(d.q, d.opt)
		if d.updates%d.targetEvery == 0 {
			c.HardUpdate(d.q, d.qTarget)
		}
	})
	d.updates++
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
