package rl

import (
	"math/rand"

	"repro/internal/backend"
	"repro/internal/nn"
)

// DDPG is deep deterministic policy gradient: an off-policy actor-critic
// for continuous control. The paper's framework study singles out the
// stable-baselines (Graph) implementation for two inefficiencies (F.4):
// the MPI-friendly CPU Adam that round-trips weights over PCIe, and target
// updates issued as separate session calls — both reproduced here behind
// Config.UseMPIAdam and Config.SeparateTargetCalls.
type DDPG struct {
	cfg Config
	b   *backend.Backend
	rng *rand.Rand

	actor, actorTarget   *backend.Network
	critic, criticTarget *backend.Network
	actorOpt, criticOpt  *nn.Adam

	replay *ReplayBuffer
	steps  int
	warmup int
	noise  float64
	tau    float64
	gamma  float64
}

// NewDDPG builds a DDPG agent.
func NewDDPG(cfg Config) *DDPG {
	validateDims("DDPG", cfg.ObsDim, cfg.ActDim)
	rng := rand.New(rand.NewSource(cfg.Seed))
	actorSizes := cfg.sizes(cfg.ObsDim, cfg.ActDim)
	criticSizes := cfg.sizes(cfg.ObsDim+cfg.ActDim, 1)
	d := &DDPG{
		cfg:       cfg,
		b:         cfg.Backend,
		rng:       rng,
		actor:     backend.NewNetwork(rng, "actor", actorSizes, nn.ReLU, nn.Tanh),
		critic:    backend.NewNetwork(rng, "critic", criticSizes, nn.ReLU, nn.Identity),
		actorOpt:  nn.NewAdam(1e-4),
		criticOpt: nn.NewAdam(1e-3),
		replay:    NewReplayBuffer(100_000, cfg.Seed+1),
		warmup:    100,
		noise:     0.1,
		tau:       0.005,
		gamma:     0.99,
	}
	d.actorTarget = backend.NewNetwork(rng, "actor_target", actorSizes, nn.ReLU, nn.Tanh)
	d.criticTarget = backend.NewNetwork(rng, "critic_target", criticSizes, nn.ReLU, nn.Identity)
	d.actor.MLP.CopyTo(d.actorTarget.MLP)
	d.critic.MLP.CopyTo(d.criticTarget.MLP)
	return d
}

// Name implements Agent.
func (d *DDPG) Name() string { return "DDPG" }

// OnPolicy implements Agent.
func (d *DDPG) OnPolicy() bool { return false }

// CollectSteps implements Agent: stable-baselines DDPG performs 100
// consecutive simulator steps per collection segment (paper F.5).
func (d *DDPG) CollectSteps() int {
	if d.cfg.CollectStepsOverride > 0 {
		return d.cfg.CollectStepsOverride
	}
	return 100
}

// UpdatesPerCollect implements Agent: one gradient step per collected
// environment step once the replay buffer is warm.
func (d *DDPG) UpdatesPerCollect() int {
	if d.replay.Len() < d.warmup {
		return 0
	}
	return d.CollectSteps() / 2
}

// Act implements Agent: deterministic actor plus Gaussian exploration
// noise.
func (d *DDPG) Act(obs []float64) []float64 {
	x := obsTensor([][]float64{obs})
	var a *nn.Tensor
	d.b.Compute("ddpg/predict", backend.KindInference, func(c *backend.Comp) {
		c.Feed(x)
		a = c.Forward(d.actor, x)
		c.Fetch(a)
	})
	return gaussianNoise(d.rng, a.Row(0), d.noise)
}

// NumEnvs implements Agent: DDPG collects from a single environment.
func (d *DDPG) NumEnvs() int { return 1 }

// ActBatch implements Agent.
func (d *DDPG) ActBatch(obs [][]float64) [][]float64 {
	return [][]float64{d.Act(obs[0])}
}

// Observe implements Agent.
func (d *DDPG) Observe(_ int, t Transition) {
	d.replay.Add(t)
	d.steps++
}

// actorMean returns the actor's deterministic first-dimension output for one
// observation, bypassing the backend and exploration noise (diagnostics).
func (d *DDPG) actorMean(obs []float64) float64 {
	return d.actor.MLP.Forward(obsTensor([][]float64{obs})).At(0, 0)
}

// Update implements Agent: one critic update and one actor update, with
// target-network maintenance.
func (d *DDPG) Update() {
	batchSize := d.cfg.batch()
	d.b.Session().Python(pythonMinibatchCost(batchSize))
	batch := d.replay.Sample(batchSize)

	obs := make([][]float64, batchSize)
	acts := make([][]float64, batchSize)
	next := make([][]float64, batchSize)
	for i, t := range batch {
		obs[i] = t.Obs
		acts[i] = t.Act
		next[i] = t.Next
	}
	xNext := obsTensor(next)
	xObs := obsTensor(obs)
	critIn := concatTensor(obs, acts)

	// --- Critic update ---
	d.b.Compute("ddpg/critic_train", backend.KindBackprop, func(c *backend.Comp) {
		c.Feed(critIn)
		c.Feed(xNext)
		c.ZeroGrad(d.critic)
		// y = r + γ·Q'(s', π'(s'))
		aNext := c.Forward(d.actorTarget, xNext)
		var targetIn *nn.Tensor
		c.HostLoss("ddpg/concat", func() {
			nextActs := make([][]float64, batchSize)
			for i := 0; i < batchSize; i++ {
				nextActs[i] = aNext.Row(i)
			}
			targetIn = concatTensor(next, nextActs)
		})
		qNext := c.Forward(d.criticTarget, targetIn)
		pred := c.Forward(d.critic, critIn)
		var grad *nn.Tensor
		c.HostLoss("ddpg/mse", func() {
			target := nn.NewTensor(batchSize, 1)
			for i, t := range batch {
				y := t.Reward
				if !t.Done {
					y += d.gamma * qNext.At(i, 0)
				}
				target.Set(i, 0, y)
			}
			_, grad = nn.MSELoss(pred, target)
		})
		c.Backward(d.critic, grad)
		if d.cfg.UseMPIAdam {
			return // applied outside, in Python (stable-baselines path)
		}
		c.AdamStepFused(d.critic, d.criticOpt)
	})
	if d.cfg.UseMPIAdam {
		d.b.MPIAdamApply(d.critic, d.criticOpt)
	}

	// --- Actor update: maximize Q(s, π(s)) ---
	d.b.Compute("ddpg/actor_train", backend.KindBackprop, func(c *backend.Comp) {
		c.Feed(xObs)
		c.ZeroGrad(d.actor)
		c.ZeroGrad(d.critic) // scratch gradients for dQ/da only
		aPred := c.Forward(d.actor, xObs)
		var actorIn *nn.Tensor
		c.HostLoss("ddpg/concat_pi", func() {
			piActs := make([][]float64, batchSize)
			for i := 0; i < batchSize; i++ {
				piActs[i] = aPred.Row(i)
			}
			actorIn = concatTensor(obs, piActs)
		})
		c.Forward(d.critic, actorIn)
		var dQdIn *nn.Tensor
		c.HostLoss("ddpg/actor_grad", func() {
			// Maximize mean Q: upstream gradient is −1/N.
			up := nn.NewTensor(batchSize, 1)
			up.Fill(-1.0 / float64(batchSize))
			dQdIn = up
		})
		dIn := c.Backward(d.critic, dQdIn)
		var dAct *nn.Tensor
		c.HostLoss("ddpg/split_grad", func() {
			dAct = splitCriticInputGrad(dIn, d.cfg.ObsDim)
		})
		c.Backward(d.actor, dAct)
		if d.cfg.UseMPIAdam {
			return
		}
		c.AdamStepFused(d.actor, d.actorOpt)
		if !d.cfg.SeparateTargetCalls {
			c.PolyakUpdate(d.actor, d.actorTarget, d.tau)
			c.PolyakUpdate(d.critic, d.criticTarget, d.tau)
		}
	})
	if d.cfg.UseMPIAdam {
		d.b.MPIAdamApply(d.actor, d.actorOpt)
	}
	if d.cfg.SeparateTargetCalls {
		// stable-baselines issues each target update as its own
		// session call (paper F.4's "could be bundled into a single
		// call").
		d.b.Compute("ddpg/update_actor_target", backend.KindBackprop, func(c *backend.Comp) {
			c.PolyakUpdate(d.actor, d.actorTarget, d.tau)
		})
		d.b.Compute("ddpg/update_critic_target", backend.KindBackprop, func(c *backend.Comp) {
			c.PolyakUpdate(d.critic, d.criticTarget, d.tau)
		})
	}
}
