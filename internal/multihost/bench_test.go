package multihost

import (
	"testing"
)

// BenchmarkMultiHostMerge measures the full in-memory merge of a
// 3-actor/1-learner distributed run: message pairing, offset estimation,
// proc remapping, timeline shifting, and the final sort+validate.
// MergeTraces never mutates its inputs, so the cached host traces are safe
// to reuse across iterations.
func BenchmarkMultiHostMerge(b *testing.B) {
	inputs := distTraces(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := MergeTraces(inputs, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
