package multihost

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/trace"
	"repro/internal/vclock"
)

// Alignment failure classes. Both wrap into Merge errors; errors.Is lets
// callers (and the CLI) distinguish "collect more cross-traffic" from
// "these traces cannot have come from one run".
var (
	// ErrAmbiguous means the send/recv pairs bound the inter-host clock
	// offsets too loosely (or not at all) to order events across hosts:
	// one-directional traffic, a host with no message path to the
	// reference, or bound widths beyond Options.MaxUncertainty.
	ErrAmbiguous = errors.New("multihost: skew bounds make cross-host ordering ambiguous")
	// ErrInconsistent means no clock-offset assignment satisfies every
	// send-before-receive constraint — the traces contradict causality.
	ErrInconsistent = errors.New("multihost: send/recv constraints are inconsistent")
)

// Message-id markers the profiler's NetSend/NetRecv embed in Network CPU
// event names. The shared id after the prefix pairs the two sides.
const (
	sendPrefix = "net.send:"
	recvPrefix = "net.recv:"
)

// message is one cross-host send/recv pair recovered from the traces.
// Times are host-local; endpoints index the sorted host list.
type message struct {
	id                 string
	sendHost, recvHost int
	sendEnd, recvEnd   vclock.Time
	haveSend, haveRecv bool
}

// pairBound is the two-sided constraint on δ_a − δ_b for one host pair
// (a < b), where δ_h is host h's clock offset (local = true + δ_h).
//
// Every message a→b was on the wire before it was processed:
//
//	sendEnd_a − δ_a ≤ recvEnd_b − δ_b  ⇒  δ_a − δ_b ≥ −(recvEnd_b − sendEnd_a)
//
// so a→b traffic caps the offset difference from below and b→a traffic
// caps it from above — the same two-sided bracketing NTP derives from a
// request/response exchange, here recovered entirely from the traces.
type pairBound struct {
	lo, hi          vclock.Duration
	haveLo, haveHi  bool
	nForward, nBack int
}

type pairKey struct{ a, b int }

// collectMessages scans the sorted host traces for paired net.send/net.recv
// events. Every id must appear exactly once as a send and once as a recv,
// on different hosts.
func collectMessages(hosts []*trace.Trace) (map[string]*message, error) {
	msgs := map[string]*message{}
	get := func(id string) *message {
		m := msgs[id]
		if m == nil {
			m = &message{id: id}
			msgs[id] = m
		}
		return m
	}
	for hi, t := range hosts {
		for _, e := range t.Events {
			if e.Kind != trace.KindCPU || e.Cat != trace.CatNetwork {
				continue
			}
			switch {
			case strings.HasPrefix(e.Name, sendPrefix):
				m := get(e.Name[len(sendPrefix):])
				if m.haveSend {
					return nil, fmt.Errorf("multihost: message %q sent twice (hosts %q and %q)",
						m.id, hosts[m.sendHost].Meta.Host, t.Meta.Host)
				}
				m.haveSend, m.sendHost, m.sendEnd = true, hi, e.End
			case strings.HasPrefix(e.Name, recvPrefix):
				m := get(e.Name[len(recvPrefix):])
				if m.haveRecv {
					return nil, fmt.Errorf("multihost: message %q received twice (hosts %q and %q)",
						m.id, hosts[m.recvHost].Meta.Host, t.Meta.Host)
				}
				m.haveRecv, m.recvHost, m.recvEnd = true, hi, e.End
			}
		}
	}
	for _, m := range msgs {
		if !m.haveSend || !m.haveRecv {
			side := "send"
			if m.haveSend {
				side = "recv"
			}
			return nil, fmt.Errorf("multihost: message %q has no %s event — host dirs from different runs, or an incomplete set", m.id, side)
		}
		if m.sendHost == m.recvHost {
			return nil, fmt.Errorf("multihost: message %q sent and received on the same host %q", m.id, hosts[m.sendHost].Meta.Host)
		}
	}
	return msgs, nil
}

// estimateOffsets recovers one clock offset per host (local = true + δ̂)
// from the message set, with the first sorted host as the δ̂=0 reference.
//
// Per host pair it intersects the per-message causality constraints into a
// [lo, hi] bracket on the offset difference, rejects brackets that are
// one-sided, empty, or wider than 2×maxUncertainty (ordering inside the
// bracket would be guesswork), then takes the bracket midpoint and composes
// estimates across the pair graph breadth-first from the reference. A final
// pass re-checks every message under the composed estimates, which catches
// cycle inconsistencies midpoint composition can introduce.
//
// Midpoints keep every spanning-edge constraint satisfied by construction:
// mid ∈ [lo, hi], so shifted sends stay ≤ shifted receives in both
// directions — merged traces are causally ordered, not just approximately
// aligned.
func estimateOffsets(hosts []*trace.Trace, msgs map[string]*message, maxUncertainty vclock.Duration) ([]vclock.Duration, error) {
	n := len(hosts)
	offsets := make([]vclock.Duration, n)
	if n == 1 {
		return offsets, nil
	}

	bounds := map[pairKey]*pairBound{}
	pair := func(a, b int) *pairBound {
		pb := bounds[pairKey{a, b}]
		if pb == nil {
			pb = &pairBound{}
			bounds[pairKey{a, b}] = pb
		}
		return pb
	}
	for _, m := range msgs {
		s, r := m.sendHost, m.recvHost
		d := m.recvEnd.Sub(m.sendEnd) // δ_s − δ_r ≥ −d
		if s < r {
			pb := pair(s, r)
			if !pb.haveLo || -d > pb.lo {
				pb.haveLo, pb.lo = true, -d
			}
			pb.nForward++
		} else {
			// δ_s − δ_r ≥ −d with s the higher index: flip to an
			// upper bound on δ_r(=a) − δ_s(=b).
			pb := pair(r, s)
			if !pb.haveHi || d < pb.hi {
				pb.haveHi, pb.hi = true, d
			}
			pb.nBack++
		}
	}

	for pk, pb := range bounds {
		pa, pbn := hosts[pk.a].Meta.Host, hosts[pk.b].Meta.Host
		if !pb.haveLo || !pb.haveHi {
			return nil, fmt.Errorf("%w: hosts %q/%q exchanged messages in only one direction (%d forward, %d back)",
				ErrAmbiguous, pa, pbn, pb.nForward, pb.nBack)
		}
		if pb.lo > pb.hi {
			return nil, fmt.Errorf("%w: hosts %q/%q offset bracket is empty [%v, %v]",
				ErrInconsistent, pa, pbn, pb.lo, pb.hi)
		}
		if width := pb.hi - pb.lo; width > 2*maxUncertainty {
			return nil, fmt.Errorf("%w: hosts %q/%q offset bracket width %v exceeds 2×%v",
				ErrAmbiguous, pa, pbn, width, maxUncertainty)
		}
	}

	// Compose midpoint estimates breadth-first from the reference host,
	// visiting neighbors in ascending index so the estimate is a pure
	// function of the host set, independent of map iteration order.
	known := make([]bool, n)
	known[0] = true
	queue := []int{0}
	for len(queue) > 0 {
		a := queue[0]
		queue = queue[1:]
		for b := 0; b < n; b++ {
			if known[b] || b == a {
				continue
			}
			x, y := a, b
			if x > y {
				x, y = y, x
			}
			pb := bounds[pairKey{x, y}]
			if pb == nil {
				continue
			}
			mid := (pb.lo + pb.hi) / 2 // δ_x − δ_y estimate
			if a == x {
				offsets[b] = offsets[a] - mid
			} else {
				offsets[b] = offsets[a] + mid
			}
			known[b] = true
			queue = append(queue, b)
		}
	}
	for h := 0; h < n; h++ {
		if !known[h] {
			return nil, fmt.Errorf("%w: host %q has no message path to reference host %q",
				ErrAmbiguous, hosts[h].Meta.Host, hosts[0].Meta.Host)
		}
	}

	for _, m := range msgs {
		if m.sendEnd-vclock.Time(offsets[m.sendHost]) > m.recvEnd-vclock.Time(offsets[m.recvHost]) {
			return nil, fmt.Errorf("%w: message %q would be received before it was sent under the composed offsets",
				ErrInconsistent, m.id)
		}
	}
	return offsets, nil
}
