// Package multihost merges the per-host trace directories of one
// distributed run into a single causally-ordered trace the unchanged
// analysis Engine can process.
//
// Real cluster hosts do not share a clock, so per-host traces cannot simply
// be concatenated: a receiver's clock may place a message's processing
// before the sender's clock places its transmission. The workloads'
// communication layer records every cross-host message as a pair of Network
// CPU events sharing an id ("net.send:<id>" / "net.recv:<id>"), which turns
// each message into a causality constraint on the two hosts' clock offsets.
// Merge intersects those constraints per host pair (align.go), rejects
// merges where the surviving bracket is too wide to order events, shifts
// every host onto the composed common timeline, rewrites process ids into
// disjoint per-host ranges, and writes one v2 trace directory whose
// network-wait shows up as a first-class resource next to CPU and GPU time.
package multihost

import (
	"fmt"
	"sort"
	"strconv"

	"repro/internal/trace"
	"repro/internal/vclock"
)

// DefaultMaxUncertainty is the largest acceptable pairwise offset-bracket
// half-width when Options.MaxUncertainty is zero. Brackets are about one
// round-trip wide, so this admits LAN-scale traffic comfortably while
// rejecting traces whose cross-traffic is too sparse or too slow to order.
const DefaultMaxUncertainty = 5 * vclock.Millisecond

// ProcStride is the per-host process-id range in the merged trace: host i
// (in sorted host-name order) owns ids [i×ProcStride, (i+1)×ProcStride).
// Disjoint ranges are what make per-host groups exact under
// analysis.MergeResult — the same invariant fleet queries rely on across
// runs.
const ProcStride = 1 << 16

// Reserved label keys the merge writes into the output's Meta.Labels.
const (
	// LabelHosts lists the merged host names, comma-joined in sorted
	// order.
	LabelHosts = "hosts"
	// LabelOffsetPrefix + <host> records the shift applied to that
	// host's timestamps: merged time = host-local time + offset_ns.
	LabelOffsetPrefix = "offset_ns."
)

// Options configures a merge.
type Options struct {
	// MaxUncertainty is the largest acceptable half-width of a pairwise
	// clock-offset bracket; wider brackets mean the traces cannot be
	// causally ordered and the merge is rejected (0 = default).
	MaxUncertainty vclock.Duration
	// ChunkBytes is the output writer's chunk-size target (0 = writer
	// default).
	ChunkBytes int
}

func (o Options) maxUncertainty() vclock.Duration {
	if o.MaxUncertainty > 0 {
		return o.MaxUncertainty
	}
	return DefaultMaxUncertainty
}

// Stats reports what a merge did.
type Stats struct {
	// Hosts are the merged host names in sorted (= proc-range) order.
	Hosts []string
	// Procs and Events count the merged output.
	Procs, Events int
	// Messages is the number of cross-host send/recv pairs that
	// constrained the alignment.
	Messages int
	// Offsets maps host → applied shift (merged = local + shift), the
	// same values recorded in the output's offset_ns.<host> labels.
	Offsets map[string]vclock.Duration
	// Digest is the output directory's content digest (dir merges only).
	Digest string
}

// MergeTraces aligns and merges loaded per-host traces in memory. Every
// input must carry a distinct Meta.Host; inputs may arrive in any order —
// the output is a pure function of the input set (hosts are sorted by
// name, and the first sorted host anchors the merged timeline).
func MergeTraces(inputs []*trace.Trace, opts Options) (*trace.Trace, *Stats, error) {
	if len(inputs) == 0 {
		return nil, nil, fmt.Errorf("multihost: no input traces")
	}
	hosts := make([]*trace.Trace, len(inputs))
	copy(hosts, inputs)
	seen := map[string]bool{}
	for _, t := range hosts {
		if t.Meta.Host == "" {
			return nil, nil, fmt.Errorf("multihost: input trace (workload %q) has no Meta.Host — record hosts at profiling time", t.Meta.Workload)
		}
		if seen[t.Meta.Host] {
			return nil, nil, fmt.Errorf("multihost: duplicate host %q", t.Meta.Host)
		}
		seen[t.Meta.Host] = true
	}
	sort.Slice(hosts, func(i, j int) bool { return hosts[i].Meta.Host < hosts[j].Meta.Host })
	for _, t := range hosts[1:] {
		if t.Meta.Config != hosts[0].Meta.Config {
			return nil, nil, fmt.Errorf("multihost: host %q ran with flags %v, host %q with %v — one run uses one flag set",
				t.Meta.Host, t.Meta.Config, hosts[0].Meta.Host, hosts[0].Meta.Config)
		}
		if t.Meta.Workload != hosts[0].Meta.Workload {
			return nil, nil, fmt.Errorf("multihost: host %q is workload %q, host %q is %q — host dirs from different runs",
				t.Meta.Host, t.Meta.Workload, hosts[0].Meta.Host, hosts[0].Meta.Workload)
		}
	}

	msgs, err := collectMessages(hosts)
	if err != nil {
		return nil, nil, err
	}
	offsets, err := estimateOffsets(hosts, msgs, opts.maxUncertainty())
	if err != nil {
		return nil, nil, err
	}

	// Shift every host onto the common timeline (local − δ̂), then
	// normalize so the merged trace starts at 0 — offsets can make raw
	// shifted times negative, and a common origin keeps the output
	// independent of the reference host's absolute clock value.
	var minStart vclock.Time
	first := true
	for hi, t := range hosts {
		for _, e := range t.Events {
			if s := e.Start - vclock.Time(offsets[hi]); first || s < minStart {
				minStart, first = s, false
			}
		}
	}

	stats := &Stats{
		Hosts:   make([]string, len(hosts)),
		Offsets: make(map[string]vclock.Duration, len(hosts)),
	}
	merged := &trace.Trace{
		Meta: trace.Meta{
			Workload: hosts[0].Meta.Workload,
			Config:   hosts[0].Meta.Config,
			Labels:   map[string]string{},
			Procs:    map[trace.ProcID]trace.ProcInfo{},
		},
	}
	hostNames := make([]string, len(hosts))
	for hi, t := range hosts {
		hostNames[hi] = t.Meta.Host
		stats.Hosts[hi] = t.Meta.Host
		applied := -offsets[hi] - vclock.Duration(minStart)
		stats.Offsets[t.Meta.Host] = applied
		merged.Meta.Labels[LabelOffsetPrefix+t.Meta.Host] = strconv.FormatInt(int64(applied), 10)

		base := trace.ProcID(hi * ProcStride)
		remap := func(p trace.ProcID) (trace.ProcID, error) {
			if p < 0 || p >= ProcStride {
				return 0, fmt.Errorf("multihost: host %q process id %d outside per-host range [0, %d)", t.Meta.Host, p, ProcStride)
			}
			return base + p, nil
		}
		for p, info := range t.Meta.Procs {
			np, err := remap(p)
			if err != nil {
				return nil, nil, err
			}
			parent := trace.ProcID(-1)
			if info.Parent >= 0 {
				if parent, err = remap(info.Parent); err != nil {
					return nil, nil, err
				}
			}
			merged.Meta.Procs[np] = trace.ProcInfo{Name: t.Meta.Host + "/" + info.Name, Parent: parent}
		}
		for _, e := range t.Events {
			np, err := remap(e.Proc)
			if err != nil {
				return nil, nil, err
			}
			e.Proc = np
			e.Start += vclock.Time(applied)
			e.End += vclock.Time(applied)
			merged.Events = append(merged.Events, e)
		}
	}
	merged.Meta.Labels[LabelHosts] = joinHosts(hostNames)

	// Labels every host agrees on (e.g. experiment ids attached with
	// rlscope-prof -label on each machine) survive into the merged trace;
	// host-varying labels are dropped rather than guessed at.
	for k, v := range hosts[0].Meta.Labels {
		shared := true
		for _, t := range hosts[1:] {
			if t.Meta.Labels[k] != v {
				shared = false
				break
			}
		}
		if shared && merged.Meta.Labels[k] == "" {
			merged.Meta.Labels[k] = v
		}
	}

	merged.Sort()
	if err := merged.Validate(); err != nil {
		return nil, nil, fmt.Errorf("multihost: merged trace invalid: %w", err)
	}
	stats.Procs = len(merged.Meta.Procs)
	stats.Events = len(merged.Events)
	stats.Messages = len(msgs)
	return merged, stats, nil
}

// Merge reads the host trace directories, aligns and merges them, and
// writes the result to dst as a v2-format directory, verifying the written
// bytes round-trip to the merged events before reporting the output digest.
// dst's previous trace files (if any) are overwritten, matching
// trace.NewWriter semantics.
func Merge(dst string, hostDirs []string, opts Options) (*Stats, error) {
	if len(hostDirs) < 2 {
		return nil, fmt.Errorf("multihost: need at least 2 host dirs, got %d", len(hostDirs))
	}
	inputs := make([]*trace.Trace, len(hostDirs))
	for i, dir := range hostDirs {
		t, err := trace.ReadDir(dir)
		if err != nil {
			return nil, fmt.Errorf("multihost: reading host dir %q: %w", dir, err)
		}
		inputs[i] = t
	}
	merged, stats, err := MergeTraces(inputs, opts)
	if err != nil {
		return nil, err
	}

	w, err := trace.NewWriter(dst, opts.ChunkBytes, trace.WithFormat(trace.FormatV2))
	if err != nil {
		return nil, err
	}
	w.Append(merged.Events...)
	if err := w.Close(merged.Meta); err != nil {
		return nil, err
	}

	// Round-trip verification: the directory must decode back to exactly
	// the events and processes just merged.
	back, err := trace.ReadDir(dst)
	if err != nil {
		return nil, fmt.Errorf("multihost: re-reading merged dir: %w", err)
	}
	if len(back.Events) != len(merged.Events) {
		return nil, fmt.Errorf("multihost: merged dir verification failed: wrote %d events, read back %d", len(merged.Events), len(back.Events))
	}
	back.Sort()
	for i := range merged.Events {
		if back.Events[i] != merged.Events[i] {
			return nil, fmt.Errorf("multihost: merged dir verification failed: event %d mismatch after round-trip", i)
		}
	}
	digest, err := trace.DirDigest(dst)
	if err != nil {
		return nil, err
	}
	stats.Digest = digest
	return stats, nil
}

// joinHosts renders the sorted host list for the hosts label.
func joinHosts(hosts []string) string {
	out := ""
	for i, h := range hosts {
		if i > 0 {
			out += ","
		}
		out += h
	}
	return out
}
