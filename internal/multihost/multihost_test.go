package multihost

import (
	"errors"
	"math/rand"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"repro/internal/analysis"
	"repro/internal/backend"
	"repro/internal/overlap"
	"repro/internal/trace"
	"repro/internal/vclock"
	"repro/internal/workloads"
)

// distSpec is the 3-actor/1-learner run every test here merges.
var distSpec = workloads.DistributedSpec{
	Actors: 3, Algo: "DDPG", Env: "Hopper", Model: backend.EagerPyTorch,
	TotalSteps: 200, Seed: 42,
}

var (
	distOnce  sync.Once
	distCache []workloads.HostRun
	distErr   error
)

// distRuns executes the shared distributed run once per test binary.
func distRuns(tb testing.TB) []workloads.HostRun {
	tb.Helper()
	distOnce.Do(func() {
		distCache, distErr = workloads.RunDistributed(distSpec, trace.Full())
	})
	if distErr != nil {
		tb.Fatalf("RunDistributed: %v", distErr)
	}
	return distCache
}

func distTraces(tb testing.TB) []*trace.Trace {
	runs := distRuns(tb)
	ts := make([]*trace.Trace, len(runs))
	for i, r := range runs {
		ts[i] = r.Trace
	}
	return ts
}

func TestMergeTracesEndToEnd(t *testing.T) {
	runs := distRuns(t)
	merged, stats, err := MergeTraces(distTraces(t), Options{})
	if err != nil {
		t.Fatalf("MergeTraces: %v", err)
	}

	want := []string{"actor00", "actor01", "actor02", "learner"}
	if !reflect.DeepEqual(stats.Hosts, want) {
		t.Fatalf("hosts = %v, want %v", stats.Hosts, want)
	}
	if merged.Meta.Labels[LabelHosts] != "actor00,actor01,actor02,learner" {
		t.Fatalf("hosts label = %q", merged.Meta.Labels[LabelHosts])
	}
	if merged.Meta.Host != "" {
		t.Fatalf("merged trace claims single host %q", merged.Meta.Host)
	}
	if stats.Messages == 0 {
		t.Fatal("no messages constrained the alignment")
	}

	// Proc ids land in disjoint per-host ranges, hosts recorded in names.
	for p, info := range merged.Meta.Procs {
		hi := int(p) / ProcStride
		if hi < 0 || hi >= len(stats.Hosts) {
			t.Fatalf("proc %d outside any host range", p)
		}
		if wantPrefix := stats.Hosts[hi] + "/"; info.Name[:len(wantPrefix)] != wantPrefix {
			t.Fatalf("proc %d name %q not under host %q", p, info.Name, stats.Hosts[hi])
		}
	}

	// The unchanged engine analyzes the merged trace with a nonzero
	// network-wait breakdown.
	results := analysis.Run(merged, analysis.Options{Workers: 1})
	var net vclock.Duration
	for _, res := range results {
		net += res.TotalCategoryCPUTime(trace.CatNetwork)
	}
	if net == 0 {
		t.Fatal("merged analysis has zero Network time")
	}

	// Estimated offsets recover the injected ground-truth skews: applied
	// shifts differ between hosts by (skew_ref − skew_h) up to the
	// bracket half-width (about one message round-trip).
	skews := map[string]vclock.Duration{}
	for _, r := range runs {
		skews[r.Host] = r.Skew
	}
	ref := stats.Hosts[0]
	const tol = 500 * vclock.Microsecond
	for _, h := range stats.Hosts {
		got := stats.Offsets[h] - stats.Offsets[ref]
		wantDiff := skews[ref] - skews[h]
		if diff := got - wantDiff; diff < -tol || diff > tol {
			t.Errorf("host %s: recovered relative offset %v, true %v (err %v)", h, got, wantDiff, diff)
		}
	}
}

// TestMergeStitchExact: engine analysis of the merged trace equals the
// per-host analyses stitched with analysis.MergeResult for each per-host
// group — durations and transition counts exactly, spans shifted by the
// recorded per-host offset.
func TestMergeStitchExact(t *testing.T) {
	runs := distRuns(t)
	merged, stats, err := MergeTraces(distTraces(t), Options{})
	if err != nil {
		t.Fatalf("MergeTraces: %v", err)
	}
	mergedRes := analysis.Run(merged, analysis.Options{Workers: 1})

	for _, r := range runs {
		hi := hostIndex(stats.Hosts, r.Host)
		applied := stats.Offsets[r.Host]

		stitchGroup := newEmptyResult()
		for _, res := range analysis.Run(r.Trace, analysis.Options{Workers: 1}) {
			analysis.MergeResult(stitchGroup, res)
		}
		mergedGroup := newEmptyResult()
		for p, res := range mergedRes {
			if int(p)/ProcStride == hi {
				analysis.MergeResult(mergedGroup, res)
			}
		}

		if !reflect.DeepEqual(mergedGroup.ByKey, stitchGroup.ByKey) {
			t.Errorf("host %s: merged-group ByKey != stitched per-host ByKey", r.Host)
		}
		if !reflect.DeepEqual(mergedGroup.Transitions, stitchGroup.Transitions) {
			t.Errorf("host %s: merged-group Transitions != stitched Transitions", r.Host)
		}
		if got, want := mergedGroup.SpanStart, stitchGroup.SpanStart+vclock.Time(applied); got != want {
			t.Errorf("host %s: merged SpanStart %v, want local+offset %v", r.Host, got, want)
		}
		if got, want := mergedGroup.SpanEnd, stitchGroup.SpanEnd+vclock.Time(applied); got != want {
			t.Errorf("host %s: merged SpanEnd %v, want local+offset %v", r.Host, got, want)
		}
	}
}

// TestMergePermutationDeterminism: the written merged directory is
// byte-identical (same content digest) for any permutation of the input
// host dirs.
func TestMergePermutationDeterminism(t *testing.T) {
	runs := distRuns(t)
	root := t.TempDir()
	dirs := make([]string, len(runs))
	for i, r := range runs {
		dirs[i] = filepath.Join(root, r.Host)
		w, err := trace.NewWriter(dirs[i], 0)
		if err != nil {
			t.Fatal(err)
		}
		w.Append(r.Trace.Events...)
		if err := w.Close(r.Trace.Meta); err != nil {
			t.Fatal(err)
		}
	}

	var baseline string
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 5; trial++ {
		perm := append([]string(nil), dirs...)
		if trial > 0 {
			rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		}
		dst := filepath.Join(root, "merged", string(rune('a'+trial)))
		stats, err := Merge(dst, perm, Options{})
		if err != nil {
			t.Fatalf("trial %d: Merge(%v): %v", trial, perm, err)
		}
		digest, err := trace.DirDigest(dst)
		if err != nil {
			t.Fatal(err)
		}
		if digest != stats.Digest {
			t.Fatalf("trial %d: stats digest %s != recomputed %s", trial, stats.Digest, digest)
		}
		if trial == 0 {
			baseline = digest
		} else if digest != baseline {
			t.Fatalf("trial %d: permuted merge digest %s != baseline %s", trial, digest, baseline)
		}
	}
}

func synthHost(host string, events ...trace.Event) *trace.Trace {
	return &trace.Trace{
		Events: events,
		Meta: trace.Meta{
			Workload: "synth",
			Host:     host,
			Procs:    map[trace.ProcID]trace.ProcInfo{0: {Name: "p", Parent: -1}},
		},
	}
}

func netEv(name string, start, end vclock.Time) trace.Event {
	return trace.Event{Kind: trace.KindCPU, Cat: trace.CatNetwork, Proc: 0, Start: start, End: end, Name: name}
}

func TestMergeRejections(t *testing.T) {
	t.Run("missing host", func(t *testing.T) {
		a := synthHost("", netEv("net.send:m1", 90, 100))
		if _, _, err := MergeTraces([]*trace.Trace{a}, Options{}); err == nil {
			t.Fatal("merge accepted a trace without Meta.Host")
		}
	})
	t.Run("one-directional traffic", func(t *testing.T) {
		a := synthHost("a", netEv("net.send:m1", 90, 100))
		b := synthHost("b", netEv("net.recv:m1", 280, 300))
		_, _, err := MergeTraces([]*trace.Trace{a, b}, Options{})
		if !errors.Is(err, ErrAmbiguous) {
			t.Fatalf("err = %v, want ErrAmbiguous", err)
		}
	})
	t.Run("bracket too wide", func(t *testing.T) {
		a := synthHost("a", netEv("net.send:m1", 90, 100), netEv("net.recv:m2", 600, 650))
		b := synthHost("b", netEv("net.recv:m1", 280, 300), netEv("net.send:m2", 380, 400))
		if _, _, err := MergeTraces([]*trace.Trace{a, b}, Options{}); err != nil {
			t.Fatalf("bidirectional merge should pass under the default bound: %v", err)
		}
		_, _, err := MergeTraces([]*trace.Trace{a, b}, Options{MaxUncertainty: 1})
		if !errors.Is(err, ErrAmbiguous) {
			t.Fatalf("err = %v, want ErrAmbiguous", err)
		}
	})
	t.Run("inconsistent causality", func(t *testing.T) {
		// a's message arrives (by b's clock) long before it was sent,
		// and vice versa: no offset satisfies both directions.
		a := synthHost("a", netEv("net.send:m1", 90, 100), netEv("net.recv:m2", 0, 5))
		b := synthHost("b", netEv("net.recv:m1", 40, 50), netEv("net.send:m2", 55, 60))
		_, _, err := MergeTraces([]*trace.Trace{a, b}, Options{})
		if !errors.Is(err, ErrInconsistent) {
			t.Fatalf("err = %v, want ErrInconsistent", err)
		}
	})
	t.Run("unpaired message", func(t *testing.T) {
		a := synthHost("a", netEv("net.send:m1", 90, 100))
		b := synthHost("b", netEv("net.recv:mX", 280, 300))
		if _, _, err := MergeTraces([]*trace.Trace{a, b}, Options{}); err == nil {
			t.Fatal("merge accepted unpaired messages")
		}
	})
}

// TestMergeCausalOrder: every message's recv event ends at or after its
// send event ends on the merged timeline.
func TestMergeCausalOrder(t *testing.T) {
	merged, _, err := MergeTraces(distTraces(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	sends := map[string]vclock.Time{}
	recvs := map[string]vclock.Time{}
	for _, e := range merged.Events {
		if e.Kind != trace.KindCPU || e.Cat != trace.CatNetwork {
			continue
		}
		if len(e.Name) > len("net.send:") && e.Name[:len("net.send:")] == "net.send:" {
			sends[e.Name[len("net.send:"):]] = e.End
		}
		if len(e.Name) > len("net.recv:") && e.Name[:len("net.recv:")] == "net.recv:" {
			recvs[e.Name[len("net.recv:"):]] = e.End
		}
	}
	if len(sends) == 0 || len(sends) != len(recvs) {
		t.Fatalf("found %d sends, %d recvs", len(sends), len(recvs))
	}
	for id, s := range sends {
		if r, ok := recvs[id]; !ok || r < s {
			t.Errorf("message %s: recv end %v before send end %v on merged timeline", id, r, s)
		}
	}
}

func hostIndex(hosts []string, h string) int {
	for i, v := range hosts {
		if v == h {
			return i
		}
	}
	return -1
}

func newEmptyResult() *overlap.Result {
	return &overlap.Result{
		ByKey:       map[overlap.Key]vclock.Duration{},
		Transitions: map[overlap.TransitionKey]int{},
	}
}
