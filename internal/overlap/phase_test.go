package overlap

import (
	"testing"

	"repro/internal/trace"
)

func TestPhasesClipAndAttribute(t *testing.T) {
	events := []trace.Event{
		{Kind: trace.KindPhase, Name: "collect", Start: 0, End: 100},
		{Kind: trace.KindPhase, Name: "train", Start: 100, End: 200},
		// CPU event spanning the boundary: 60 in collect, 40 in train.
		{Kind: trace.KindCPU, Cat: trace.CatPython, Name: "python", Start: 40, End: 140},
		// Backend call fully inside train.
		{Kind: trace.KindCPU, Cat: trace.CatBackend, Name: "run", Start: 110, End: 130},
		// GPU kernel inside train.
		{Kind: trace.KindGPU, Cat: trace.CatGPUKernel, Name: "k", Start: 150, End: 170},
	}
	phases := Phases(events)
	if len(phases) != 2 {
		t.Fatalf("phases = %d, want 2", len(phases))
	}
	collect, train := phases[0], phases[1]
	if collect.Name != "collect" || train.Name != "train" {
		t.Fatalf("phase order wrong: %v, %v", collect.Name, train.Name)
	}
	if collect.CPU != 60 {
		t.Errorf("collect CPU = %v, want 60", collect.CPU)
	}
	if collect.GPU != 0 {
		t.Errorf("collect GPU = %v, want 0", collect.GPU)
	}
	if train.CPU != 40 {
		t.Errorf("train CPU = %v, want 40 (python tail)", train.CPU)
	}
	if train.ByCategory[trace.CatBackend] != 20 {
		t.Errorf("train backend = %v, want 20", train.ByCategory[trace.CatBackend])
	}
	if train.ByCategory[trace.CatPython] != 20 {
		t.Errorf("train python = %v, want 20", train.ByCategory[trace.CatPython])
	}
	if train.GPU != 20 {
		t.Errorf("train GPU = %v, want 20", train.GPU)
	}
	if train.Duration() != 100 {
		t.Errorf("train duration = %v, want 100", train.Duration())
	}
}

func TestPhasesEmptyWithoutAnnotations(t *testing.T) {
	events := []trace.Event{
		{Kind: trace.KindCPU, Cat: trace.CatPython, Name: "p", Start: 0, End: 10},
	}
	if got := Phases(events); got != nil {
		t.Fatalf("Phases = %v, want nil", got)
	}
}

func TestPhasesByProc(t *testing.T) {
	tr := &trace.Trace{Events: []trace.Event{
		{Kind: trace.KindPhase, Proc: 0, Name: "a", Start: 0, End: 10},
		{Kind: trace.KindCPU, Cat: trace.CatPython, Proc: 0, Name: "p", Start: 0, End: 10},
		{Kind: trace.KindCPU, Cat: trace.CatPython, Proc: 1, Name: "p", Start: 0, End: 10},
	}}
	got := PhasesByProc(tr)
	if len(got) != 1 || len(got[0]) != 1 {
		t.Fatalf("PhasesByProc = %v", got)
	}
	if got[0][0].CPU != 10 {
		t.Fatalf("phase CPU = %v", got[0][0].CPU)
	}
}
