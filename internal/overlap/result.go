package overlap

import (
	"sort"

	"repro/internal/trace"
	"repro/internal/vclock"
)

// OpNames returns the sorted set of operations appearing in the result,
// excluding UntrackedOp unless it accumulated time.
func (r *Result) OpNames() []string {
	seen := map[string]bool{}
	for k := range r.ByKey {
		seen[k.Op] = true
	}
	names := make([]string, 0, len(seen))
	for name := range seen {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Dur returns the accumulated duration for one exact breakdown cell.
func (r *Result) Dur(op string, res ResourceSet, cat trace.Category) vclock.Duration {
	return r.ByKey[Key{Op: op, Res: res, Cat: cat}]
}

// OpTotal returns all time attributed to an operation across every resource
// set and category.
func (r *Result) OpTotal(op string) vclock.Duration {
	var total vclock.Duration
	for k, d := range r.ByKey {
		if k.Op == op {
			total += d
		}
	}
	return total
}

// Total returns all attributed time across every operation. For a
// single-threaded process with no idle gaps this equals total training time.
func (r *Result) Total() vclock.Duration {
	var total vclock.Duration
	for _, d := range r.ByKey {
		total += d
	}
	return total
}

// CPUTime returns time the CPU was busy within op (CPU-only plus CPU+GPU).
func (r *Result) CPUTime(op string) vclock.Duration {
	var total vclock.Duration
	for k, d := range r.ByKey {
		if k.Op == op && k.Res&ResCPU != 0 {
			total += d
		}
	}
	return total
}

// GPUTime returns time the GPU was busy within op (GPU-only plus CPU+GPU).
// This is the paper's "time spent executing GPU kernels" metric — the honest
// counterpart of nvidia-smi utilization.
func (r *Result) GPUTime(op string) vclock.Duration {
	var total vclock.Duration
	for k, d := range r.ByKey {
		if k.Op == op && k.Res&ResGPU != 0 {
			total += d
		}
	}
	return total
}

// TotalGPUTime returns GPU-busy time across all operations.
func (r *Result) TotalGPUTime() vclock.Duration {
	var total vclock.Duration
	for k, d := range r.ByKey {
		if k.Res&ResGPU != 0 {
			total += d
		}
	}
	return total
}

// CategoryCPUTime returns CPU time attributed to one stack tier within op,
// including intervals where the GPU was simultaneously busy.
func (r *Result) CategoryCPUTime(op string, cat trace.Category) vclock.Duration {
	var total vclock.Duration
	for k, d := range r.ByKey {
		if k.Op == op && k.Res&ResCPU != 0 && k.Cat == cat {
			total += d
		}
	}
	return total
}

// TotalCategoryCPUTime returns CPU time in one tier across all operations.
func (r *Result) TotalCategoryCPUTime(cat trace.Category) vclock.Duration {
	var total vclock.Duration
	for op := range opSet(r) {
		total += r.CategoryCPUTime(op, cat)
	}
	return total
}

func opSet(r *Result) map[string]bool {
	set := map[string]bool{}
	for k := range r.ByKey {
		set[k.Op] = true
	}
	return set
}

// TransitionCount returns the number of transitions with the given label
// scoped to op.
func (r *Result) TransitionCount(op, label string) int {
	return r.Transitions[TransitionKey{Op: op, Label: label}]
}

// TotalTransitions returns the count of transitions with the given label
// across all operations.
func (r *Result) TotalTransitions(label string) int {
	total := 0
	for k, n := range r.Transitions {
		if k.Label == label {
			total += n
		}
	}
	return total
}

// ComputeTrace runs the overlap sweep independently for each process in the
// trace, mirroring the paper's per-process analysis (Figure 8 shows one bar
// per process).
func ComputeTrace(t *trace.Trace) map[trace.ProcID]*Result {
	out := map[trace.ProcID]*Result{}
	for _, p := range t.ProcIDs() {
		out[p] = Compute(t.ProcEvents(p))
	}
	return out
}

// Merge sums other into r (used to aggregate multi-process runs into one
// breakdown when a combined view is wanted).
func (r *Result) Merge(other *Result) {
	for k, d := range other.ByKey {
		r.ByKey[k] += d
	}
	for k, n := range other.Transitions {
		r.Transitions[k] += n
	}
	if other.SpanStart < r.SpanStart {
		r.SpanStart = other.SpanStart
	}
	if other.SpanEnd > r.SpanEnd {
		r.SpanEnd = other.SpanEnd
	}
}
