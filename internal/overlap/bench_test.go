package overlap

import (
	"testing"

	"repro/internal/trace"
	"repro/internal/vclock"
)

// deepNestingEvents builds the concurrency-heavy regime where the old
// classify-by-rescan sweep was O(n²): pyramids of deeply nested CPU events
// and operations, with GPU activity overlapping everything. With depth
// concurrent events active at once, the reference sweep touches ~depth
// events per elementary interval; the incremental sweep touches O(1).
func deepNestingEvents(total, depth int) []trace.Event {
	cpuCats := []trace.Category{
		trace.CatPython, trace.CatSimulator, trace.CatBackend, trace.CatCUDA,
	}
	perPyramid := depth + depth/2 + depth/2 // CPU + op + GPU events each
	pyramids := total / perPyramid
	if pyramids < 1 {
		pyramids = 1
	}
	width := vclock.Time(4 * depth)
	var events []trace.Event
	for p := 0; p < pyramids; p++ {
		base := vclock.Time(p) * width
		// CPU pyramid: depth strictly nested events.
		for j := 0; j < depth; j++ {
			events = append(events, trace.Event{
				Kind: trace.KindCPU, Cat: cpuCats[j%len(cpuCats)],
				Start: base + vclock.Time(j), End: base + width - vclock.Time(j),
				Name: "cpu",
			})
		}
		// Op pyramid: depth/2 nested annotations over the same span.
		for j := 0; j < depth/2; j++ {
			events = append(events, trace.Event{
				Kind:  trace.KindOp,
				Start: base + vclock.Time(2*j), End: base + width - vclock.Time(2*j),
				Name: "op",
			})
		}
		// GPU activity: depth/2 staggered, overlapping intervals.
		for j := 0; j < depth/2; j++ {
			cat := trace.CatGPUKernel
			if j%2 == 1 {
				cat = trace.CatGPUMemcpy
			}
			events = append(events, trace.Event{
				Kind: trace.KindGPU, Cat: cat,
				Start: base + vclock.Time(j), End: base + width/2 + vclock.Time(j),
				Name: "k",
			})
		}
	}
	return events
}

// TestDeepNestingMatchesReference keeps the benchmark honest: both sweeps
// must produce identical results on the stress trace.
func TestDeepNestingMatchesReference(t *testing.T) {
	events := deepNestingEvents(2000, 100)
	if !resultsEqual(Compute(events), refCompute(events)) {
		t.Fatal("incremental and reference sweeps diverge on the deep-nesting trace")
	}
}

// BenchmarkOverlapDeepNesting measures the incremental sweep against the
// retained reference implementation on ~10k events with up to ~100
// simultaneously active events — the regime the incremental state machine
// exists for. The CI bench gate tracks both variants (and their allocs), so
// the speedup this PR buys cannot silently erode.
func BenchmarkOverlapDeepNesting(b *testing.B) {
	events := deepNestingEvents(10_000, 100)
	b.Run("incremental", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if res := Compute(events); len(res.ByKey) == 0 {
				b.Fatal("empty result")
			}
		}
		b.ReportMetric(float64(len(events)), "events")
	})
	b.Run("reference", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if res := refCompute(events); len(res.ByKey) == 0 {
				b.Fatal("empty result")
			}
		}
		b.ReportMetric(float64(len(events)), "events")
	})
}
