package overlap

// This file retains the pre-incremental sweep implementation verbatim as a
// reference oracle: it re-derives the classification of every elementary
// interval by scanning the whole active set (O(n·k) for k concurrent
// events, O(n²) in concurrency-heavy regimes) and accumulates into
// string-keyed maps directly. The property tests prove the incremental
// sweep byte-identical to it; BenchmarkOverlapDeepNesting measures the
// speedup against it.

import (
	"sort"

	"repro/internal/trace"
	"repro/internal/vclock"
)

func refCompute(events []trace.Event) *Result {
	return refComputeWindow(events, vclock.MinTime, vclock.MaxTime)
}

func refComputeWindow(events []trace.Event, lo, hi vclock.Time) *Result {
	res := &Result{
		ByKey:       map[Key]vclock.Duration{},
		Transitions: map[TransitionKey]int{},
	}
	type boundary struct {
		t    vclock.Time
		open bool
		ev   int
	}
	var bounds []boundary
	var spanSet bool
	for i, e := range events {
		switch e.Kind {
		case trace.KindCPU, trace.KindGPU, trace.KindOp:
			if e.End <= e.Start {
				continue
			}
			if e.End <= lo || e.Start >= hi {
				continue
			}
			bounds = append(bounds, boundary{e.Start, true, i}, boundary{e.End, false, i})
			if !spanSet || e.Start < res.SpanStart {
				res.SpanStart = e.Start
			}
			if !spanSet || e.End > res.SpanEnd {
				res.SpanEnd = e.End
			}
			spanSet = true
		}
	}
	sort.Slice(bounds, func(i, j int) bool {
		if bounds[i].t != bounds[j].t {
			return bounds[i].t < bounds[j].t
		}
		return !bounds[i].open && bounds[j].open
	})

	active := map[int]bool{}
	var prev vclock.Time
	first := true
	for bi := 0; bi < len(bounds); {
		t := bounds[bi].t
		if !first && t > prev {
			s, e := prev, t
			if s < lo {
				s = lo
			}
			if e > hi {
				e = hi
			}
			if e > s {
				if k, ok := refClassify(events, active); ok {
					res.ByKey[k] += e.Sub(s)
				}
			}
		}
		for bi < len(bounds) && bounds[bi].t == t {
			if bounds[bi].open {
				active[bounds[bi].ev] = true
			} else {
				delete(active, bounds[bi].ev)
			}
			bi++
		}
		prev = t
		first = false
	}

	var ops refOpIndex
	opsBuilt := false
	for _, e := range events {
		if e.Kind != trace.KindTransition || e.Start < lo || e.Start >= hi {
			continue
		}
		if !opsBuilt {
			ops = refOpIntervals(events)
			opsBuilt = true
		}
		res.Transitions[TransitionKey{Op: ops.at(e.Start), Label: e.Name}]++
	}
	return res
}

// refClassify determines the breakdown key by scanning the entire active
// set — the per-interval O(k) cost the incremental sweep eliminates.
func refClassify(events []trace.Event, active map[int]bool) (Key, bool) {
	var (
		cpuBest  trace.Event
		cpuFound bool
		gpuBest  trace.Event
		gpuFound bool
		opBest   trace.Event
		opFound  bool
	)
	for idx := range active {
		e := events[idx]
		switch e.Kind {
		case trace.KindCPU:
			if !cpuFound || innerCPU(e, cpuBest) {
				cpuBest, cpuFound = e, true
			}
		case trace.KindGPU:
			if !gpuFound || (e.Cat == trace.CatGPUKernel && gpuBest.Cat != trace.CatGPUKernel) {
				gpuBest, gpuFound = e, true
			}
		case trace.KindOp:
			if !opFound || innerOp(e, opBest) {
				opBest, opFound = e, true
			}
		}
	}
	if !cpuFound && !gpuFound {
		return Key{}, false
	}
	k := Key{Op: UntrackedOp}
	if opFound {
		k.Op = opBest.Name
	}
	if cpuFound {
		k.Res |= ResCPU
		k.Cat = cpuBest.Cat
	}
	if gpuFound {
		k.Res |= ResGPU
		if !cpuFound {
			k.Cat = gpuBest.Cat
		}
	}
	return k, true
}

// refOpIndex answers "which operation is active at time t" queries with a
// linear scan from the start of the sorted op table.
type refOpIndex struct {
	events []trace.Event
}

func refOpIntervals(events []trace.Event) refOpIndex {
	var ops []trace.Event
	for _, e := range events {
		if e.Kind == trace.KindOp && e.End > e.Start {
			ops = append(ops, e)
		}
	}
	sort.Slice(ops, func(i, j int) bool {
		if ops[i].Start != ops[j].Start {
			return ops[i].Start < ops[j].Start
		}
		if ops[i].End != ops[j].End {
			return ops[i].End > ops[j].End
		}
		return ops[i].Name < ops[j].Name
	})
	return refOpIndex{events: ops}
}

func (ix refOpIndex) at(t vclock.Time) string {
	var best trace.Event
	found := false
	for _, e := range ix.events {
		if e.Start > t {
			break
		}
		if t < e.End && (!found || innerOp(e, best)) {
			best, found = e, true
		}
	}
	if !found {
		return UntrackedOp
	}
	return best.Name
}
