// Package overlap implements RL-Scope's cross-stack event overlap
// computation (paper §3.3).
//
// Raw event traces overwhelm users; what they want is "what percentage of
// the critical path was CPU-bound vs GPU-bound vs both, inside each
// high-level algorithmic operation, and in which tier of the software
// stack". The overlap computation walks the trace left to right and, for
// each elementary interval between event boundaries, attributes the
// interval's duration to a key:
//
//	(innermost active operation, resource set {CPU, GPU, CPU+GPU},
//	 innermost active CPU category)
//
// "Innermost wins" is correct because within one single-threaded process the
// CPU tiers nest like a call stack: Python calls the simulator or the ML
// backend, and the backend calls the CUDA API. GPU events overlap CPU events
// freely — that overlap is precisely what the analysis measures.
//
// The sweep is incremental (see Sweeper): classification state is carried
// across event boundaries by innermost-tracking stacks and GPU counters
// instead of being re-derived per elementary interval, names and categories
// are interned into dense IDs so the hot accumulator is a flat array, and
// all scratch memory is pooled across calls.
package overlap

import (
	"sync"

	"repro/internal/trace"
	"repro/internal/vclock"
)

// ResourceSet is a bitmask of hardware resources active during an interval.
type ResourceSet uint8

// Resource bits.
const (
	ResCPU ResourceSet = 1 << iota
	ResGPU
)

// String returns the paper's legend name for the resource set.
func (r ResourceSet) String() string {
	switch r {
	case ResCPU:
		return "CPU"
	case ResGPU:
		return "GPU"
	case ResCPU | ResGPU:
		return "CPU + GPU"
	default:
		return "idle"
	}
}

// UntrackedOp is the operation label assigned to time not covered by any
// user annotation.
const UntrackedOp = "(untracked)"

// Key identifies one cell of the overlap breakdown.
type Key struct {
	// Op is the innermost operation annotation active during the
	// interval, or UntrackedOp.
	Op string
	// Res is the set of resources in use.
	Res ResourceSet
	// Cat is the innermost CPU category when ResCPU is set; for GPU-only
	// intervals it is the GPU event category (kernel vs memcpy, with
	// kernels taking precedence when both are in flight).
	Cat trace.Category
}

// Result is the outcome of the overlap computation for one process.
type Result struct {
	// ByKey maps breakdown cells to accumulated duration.
	ByKey map[Key]vclock.Duration
	// Transitions counts language transitions per (operation, label).
	Transitions map[TransitionKey]int
	// Span is the [start, end] extent of the process's events.
	SpanStart, SpanEnd vclock.Time
}

// TransitionKey identifies a transition counter.
type TransitionKey struct {
	Op    string
	Label string
}

// sweepers pools sweep scratch (boundary slices, stacks, interners, the
// dense accumulator) across Compute/ComputeWindow calls; without it every
// shard of every window would re-allocate the lot. Long-lived callers that
// sweep many windows (the analysis worker pool) hold their own Sweeper
// instead, one per worker.
var sweepers = sync.Pool{New: func() any { return NewSweeper() }}

// Compute runs the overlap sweep over one process's events. The slice may be
// in any order; only KindCPU, KindGPU, KindOp and KindTransition events
// participate.
func Compute(events []trace.Event) *Result {
	return ComputeWindow(events, vclock.MinTime, vclock.MaxTime)
}

// ComputeWindow runs the overlap sweep restricted to the half-open window
// [lo, hi): only time inside the window is accumulated and only transition
// markers with lo <= t < hi are counted. Events are NOT clipped — every
// instant inside the window is classified against the original event
// boundaries, so summing the results of a window partition reproduces
// Compute over the full timeline exactly. This is the primitive the sharded
// analysis engine (internal/analysis) parallelizes over.
func ComputeWindow(events []trace.Event, lo, hi vclock.Time) *Result {
	sw := GetSweeper()
	res := sw.computeWindow(events, lo, hi, true)
	PutSweeper(sw)
	return res
}

// GetSweeper borrows a Sweeper from the package pool; PutSweeper returns
// it. Callers that sweep many windows from one goroutine (the analysis
// worker pool gives each worker its own) borrow once instead of paying a
// pool round-trip per window.
func GetSweeper() *Sweeper { return sweepers.Get().(*Sweeper) }

// PutSweeper returns a borrowed Sweeper to the package pool. The Sweeper
// must not be used after.
func PutSweeper(sw *Sweeper) { sweepers.Put(sw) }

// innerCPU reports whether a is more deeply nested than b: later start wins;
// at equal starts the higher CPU rank (deeper tier) wins. The remaining
// comparisons only break exact ties, so the choice never depends on input
// order.
func innerCPU(a, b trace.Event) bool {
	if a.Start != b.Start {
		return a.Start > b.Start
	}
	if ar, br := a.Cat.CPURank(), b.Cat.CPURank(); ar != br {
		return ar > br
	}
	if a.End != b.End {
		return a.End < b.End
	}
	if a.Cat != b.Cat {
		return a.Cat > b.Cat
	}
	return a.Name < b.Name
}

// innerOp reports whether op event a is more deeply nested than b: later
// start wins, then earlier end; the name comparison only breaks exact ties
// deterministically.
func innerOp(a, b trace.Event) bool {
	if a.Start != b.Start {
		return a.Start > b.Start
	}
	if a.End != b.End {
		return a.End < b.End
	}
	return a.Name < b.Name
}
