// Package overlap implements RL-Scope's cross-stack event overlap
// computation (paper §3.3).
//
// Raw event traces overwhelm users; what they want is "what percentage of
// the critical path was CPU-bound vs GPU-bound vs both, inside each
// high-level algorithmic operation, and in which tier of the software
// stack". The overlap computation walks the trace left to right and, for
// each elementary interval between event boundaries, attributes the
// interval's duration to a key:
//
//	(innermost active operation, resource set {CPU, GPU, CPU+GPU},
//	 innermost active CPU category)
//
// "Innermost wins" is correct because within one single-threaded process the
// CPU tiers nest like a call stack: Python calls the simulator or the ML
// backend, and the backend calls the CUDA API. GPU events overlap CPU events
// freely — that overlap is precisely what the analysis measures.
package overlap

import (
	"sort"

	"repro/internal/trace"
	"repro/internal/vclock"
)

// ResourceSet is a bitmask of hardware resources active during an interval.
type ResourceSet uint8

// Resource bits.
const (
	ResCPU ResourceSet = 1 << iota
	ResGPU
)

// String returns the paper's legend name for the resource set.
func (r ResourceSet) String() string {
	switch r {
	case ResCPU:
		return "CPU"
	case ResGPU:
		return "GPU"
	case ResCPU | ResGPU:
		return "CPU + GPU"
	default:
		return "idle"
	}
}

// UntrackedOp is the operation label assigned to time not covered by any
// user annotation.
const UntrackedOp = "(untracked)"

// Key identifies one cell of the overlap breakdown.
type Key struct {
	// Op is the innermost operation annotation active during the
	// interval, or UntrackedOp.
	Op string
	// Res is the set of resources in use.
	Res ResourceSet
	// Cat is the innermost CPU category when ResCPU is set; for GPU-only
	// intervals it is the GPU event category (kernel vs memcpy, with
	// kernels taking precedence when both are in flight).
	Cat trace.Category
}

// Result is the outcome of the overlap computation for one process.
type Result struct {
	// ByKey maps breakdown cells to accumulated duration.
	ByKey map[Key]vclock.Duration
	// Transitions counts language transitions per (operation, label).
	Transitions map[TransitionKey]int
	// Span is the [start, end] extent of the process's events.
	SpanStart, SpanEnd vclock.Time
}

// TransitionKey identifies a transition counter.
type TransitionKey struct {
	Op    string
	Label string
}

// Compute runs the overlap sweep over one process's events. The slice may be
// in any order; only KindCPU, KindGPU, KindOp and KindTransition events
// participate.
func Compute(events []trace.Event) *Result {
	return ComputeWindow(events, vclock.MinTime, vclock.MaxTime)
}

// ComputeWindow runs the overlap sweep restricted to the half-open window
// [lo, hi): only time inside the window is accumulated and only transition
// markers with lo <= t < hi are counted. Events are NOT clipped — every
// instant inside the window is classified against the original event
// boundaries, so summing the results of a window partition reproduces
// Compute over the full timeline exactly. This is the primitive the sharded
// analysis engine (internal/analysis) parallelizes over.
func ComputeWindow(events []trace.Event, lo, hi vclock.Time) *Result {
	return computeWindow(events, lo, hi, true)
}

// computeWindow is ComputeWindow with transition scoping optional: callers
// that only consume ByKey sums (Phases) skip the op-index sort and the
// per-marker lookups entirely.
func computeWindow(events []trace.Event, lo, hi vclock.Time, withTransitions bool) *Result {
	res := &Result{
		ByKey:       map[Key]vclock.Duration{},
		Transitions: map[TransitionKey]int{},
	}
	type boundary struct {
		t    vclock.Time
		open bool
		ev   int
	}
	var bounds []boundary
	var spanSet bool
	for i, e := range events {
		switch e.Kind {
		case trace.KindCPU, trace.KindGPU, trace.KindOp:
			if e.End <= e.Start {
				continue // zero-width intervals contribute nothing
			}
			if e.End <= lo || e.Start >= hi {
				continue // entirely outside the window
			}
			bounds = append(bounds, boundary{e.Start, true, i}, boundary{e.End, false, i})
			// Span uses the unclipped extent: a partition of windows
			// then merges to the same span Compute reports.
			if !spanSet || e.Start < res.SpanStart {
				res.SpanStart = e.Start
			}
			if !spanSet || e.End > res.SpanEnd {
				res.SpanEnd = e.End
			}
			spanSet = true
		}
	}
	// Transition counters are scoped to the innermost operation active at
	// the marker's timestamp; resolve them after the op intervals are
	// known, via a second sweep below.
	sort.Slice(bounds, func(i, j int) bool {
		if bounds[i].t != bounds[j].t {
			return bounds[i].t < bounds[j].t
		}
		// Closes before opens at the same instant, so back-to-back
		// intervals do not appear concurrent.
		return !bounds[i].open && bounds[j].open
	})

	active := map[int]bool{}
	var prev vclock.Time
	first := true
	for bi := 0; bi < len(bounds); {
		t := bounds[bi].t
		if !first && t > prev {
			// Accumulate only the part of [prev, t) inside [lo, hi).
			s, e := prev, t
			if s < lo {
				s = lo
			}
			if e > hi {
				e = hi
			}
			if e > s {
				if k, ok := classify(events, active); ok {
					res.ByKey[k] += e.Sub(s)
				}
			}
		}
		for bi < len(bounds) && bounds[bi].t == t {
			if bounds[bi].open {
				active[bounds[bi].ev] = true
			} else {
				delete(active, bounds[bi].ev)
			}
			bi++
		}
		prev = t
		first = false
	}

	if !withTransitions {
		return res
	}
	// Second pass: scope transition markers to operations. The op index
	// is built lazily so windows without any markers skip its sort.
	var ops opIndex
	opsBuilt := false
	for _, e := range events {
		if e.Kind != trace.KindTransition || e.Start < lo || e.Start >= hi {
			continue
		}
		if !opsBuilt {
			ops = opIntervals(events)
			opsBuilt = true
		}
		res.Transitions[TransitionKey{Op: ops.at(e.Start), Label: e.Name}]++
	}
	return res
}

// classify determines the breakdown key for the current active event set.
// It reports ok=false when nothing is running (idle gap).
func classify(events []trace.Event, active map[int]bool) (Key, bool) {
	var (
		cpuBest  trace.Event
		cpuFound bool
		gpuBest  trace.Event
		gpuFound bool
		opBest   trace.Event
		opFound  bool
	)
	for idx := range active {
		e := events[idx]
		switch e.Kind {
		case trace.KindCPU:
			if !cpuFound || innerCPU(e, cpuBest) {
				cpuBest, cpuFound = e, true
			}
		case trace.KindGPU:
			// Kernels take precedence over memcpys for labelling
			// concurrent device activity.
			if !gpuFound || (e.Cat == trace.CatGPUKernel && gpuBest.Cat != trace.CatGPUKernel) {
				gpuBest, gpuFound = e, true
			}
		case trace.KindOp:
			if !opFound || innerOp(e, opBest) {
				opBest, opFound = e, true
			}
		}
	}
	if !cpuFound && !gpuFound {
		return Key{}, false
	}
	k := Key{Op: UntrackedOp}
	if opFound {
		k.Op = opBest.Name
	}
	if cpuFound {
		k.Res |= ResCPU
		k.Cat = cpuBest.Cat
	}
	if gpuFound {
		k.Res |= ResGPU
		if !cpuFound {
			k.Cat = gpuBest.Cat
		}
	}
	return k, true
}

// innerCPU reports whether a is more deeply nested than b: later start wins;
// at equal starts the higher CPU rank (deeper tier) wins. The remaining
// comparisons only break exact ties, so the choice never depends on map
// iteration order.
func innerCPU(a, b trace.Event) bool {
	if a.Start != b.Start {
		return a.Start > b.Start
	}
	if ar, br := a.Cat.CPURank(), b.Cat.CPURank(); ar != br {
		return ar > br
	}
	if a.End != b.End {
		return a.End < b.End
	}
	if a.Cat != b.Cat {
		return a.Cat > b.Cat
	}
	return a.Name < b.Name
}

// innerOp reports whether op event a is more deeply nested than b: later
// start wins, then earlier end; the name comparison only breaks exact ties
// deterministically.
func innerOp(a, b trace.Event) bool {
	if a.Start != b.Start {
		return a.Start > b.Start
	}
	if a.End != b.End {
		return a.End < b.End
	}
	return a.Name < b.Name
}

// opIndex answers "which operation is active at time t" queries.
type opIndex struct {
	events []trace.Event // KindOp only, sorted by (Start, End desc)
}

func opIntervals(events []trace.Event) opIndex {
	var ops []trace.Event
	for _, e := range events {
		if e.Kind == trace.KindOp && e.End > e.Start {
			ops = append(ops, e)
		}
	}
	sort.Slice(ops, func(i, j int) bool {
		if ops[i].Start != ops[j].Start {
			return ops[i].Start < ops[j].Start
		}
		if ops[i].End != ops[j].End {
			return ops[i].End > ops[j].End
		}
		return ops[i].Name < ops[j].Name
	})
	return opIndex{events: ops}
}

// at returns the innermost operation covering t, or UntrackedOp. Innermost
// is decided by innerOp — the same rule classify uses — so duration
// attribution and transition scoping always agree on which operation owns
// an instant, including under exact ties.
func (ix opIndex) at(t vclock.Time) string {
	var best trace.Event
	found := false
	for _, e := range ix.events {
		if e.Start > t {
			break
		}
		if t < e.End && (!found || innerOp(e, best)) {
			best, found = e, true
		}
	}
	if !found {
		return UntrackedOp
	}
	return best.Name
}
