package overlap

import (
	"sort"

	"repro/internal/trace"
	"repro/internal/vclock"
)

// Sweeper is the reusable scratch state of the incremental overlap sweep.
// One sweep is O(n log n): the boundary sort dominates, and every elementary
// interval is classified in O(1) amortized from state maintained across
// boundaries instead of re-derived by scanning the active set.
//
// The state machine exploits the nesting structure the package doc proves:
// within one process, CPU events and operation annotations nest like call
// stacks, so the innermost active event of each kind is tracked with a
// stack. The stack is ordered by the innermost-wins comparator (innerCPU /
// innerOp) at all times: a later-starting event is always more deeply
// nested than everything already active, and events opening at the same
// instant are pushed outermost-first (the boundary sort guarantees it).
// Adversarial inputs — partially overlapping "nested" events whose closes
// arrive in non-LIFO order — cannot break the ordering, because the
// comparator depends only on immutable event fields; a non-LIFO close is
// simply marked dead in place and popped lazily when it surfaces. GPU
// events never nest meaningfully and only contribute a resource bit and a
// label — kernel when any kernel is in flight (a counter), otherwise the
// category of the latest-starting active device event (a stack). A lone
// non-kernel device event — even one decoded with an out-of-domain
// category, which the chunk reader admits unvalidated — keeps its own
// category, matching the old sweep; when several *distinct* non-kernel
// categories overlap (impossible in a validated trace, where non-kernel
// means memcpy) the latest-starting one wins, a deterministic refinement
// of the old sweep's map-iteration-order pick.
//
// Operation names and categories are interned into dense small-int IDs at
// sweep start, so the hot accumulator is a flat []vclock.Duration indexed
// by a packed (opID, resource set, catID) code; the public map-shaped
// Result is materialized once at the end. All buffers are retained across
// calls, so a Sweeper reused over many windows (the analysis worker pool
// does this) allocates almost nothing per sweep.
//
// A Sweeper is not safe for concurrent use; the package-level Compute and
// ComputeWindow draw from an internal pool.
type Sweeper struct {
	bounds  []boundary
	cpu     innerStack
	ops     innerStack
	gpu     innerStack
	dead    []bool // per-event lazy close marks for non-LIFO orders
	opIDs   map[string]int32
	opNames []string
	catSlot [256]int32 // Category -> interned slot+1; 0 means unassigned
	cats    []trace.Category
	accum   []vclock.Duration // dense (opID, res, catID) accumulator

	// Transition scoping: innermost-op segment table, built lazily only
	// for windows that contain transition markers.
	opEvs   []trace.Event
	segDead []bool
	segs    []opSegment

	sorter boundsSorter
}

// NewSweeper returns an empty Sweeper. The zero value is also usable; New
// exists for symmetry with the rest of the codebase.
func NewSweeper() *Sweeper { return &Sweeper{} }

// boundary is one endpoint of an interval event. id carries the interned
// category slot (KindCPU), the kernel flag (KindGPU: 1 for kernels, 0
// otherwise), or the interned operation ID (KindOp), so applying a boundary
// never touches the event table.
type boundary struct {
	t    vclock.Time
	ev   int32
	id   int32
	kind trace.EventKind
	open bool
}

// stackEntry is one active event on an innermost-tracking stack.
type stackEntry struct {
	ev int32
	id int32
}

// innerStack tracks the active events of one kind, ordered outermost to
// innermost. Closes that do not match the top mark the entry dead; dead
// entries are popped when they surface, so every entry is pushed and popped
// exactly once — O(1) amortized per boundary.
type innerStack struct {
	entries []stackEntry
}

func (st *innerStack) reset() { st.entries = st.entries[:0] }

func (st *innerStack) push(e stackEntry) { st.entries = append(st.entries, e) }

func (st *innerStack) close(ev int32, dead []bool) {
	es := st.entries
	for len(es) > 0 && dead[es[len(es)-1].ev] {
		es = es[:len(es)-1]
	}
	if len(es) > 0 && es[len(es)-1].ev == ev {
		es = es[:len(es)-1]
	} else {
		dead[ev] = true
	}
	st.entries = es
}

// top returns the innermost live entry, discarding dead entries on the way.
func (st *innerStack) top(dead []bool) (stackEntry, bool) {
	es := st.entries
	for len(es) > 0 {
		if e := es[len(es)-1]; !dead[e.ev] {
			st.entries = es
			return e, true
		}
		es = es[:len(es)-1]
	}
	st.entries = es
	return stackEntry{}, false
}

// opSegment is one entry of the innermost-op segment table: the operation
// owning instants in [start, next segment's start).
type opSegment struct {
	start vclock.Time
	op    string
}

// Compute runs the sweep over one process's events using this Sweeper's
// buffers. See the package-level Compute for semantics.
func (sw *Sweeper) Compute(events []trace.Event) *Result {
	return sw.computeWindow(events, vclock.MinTime, vclock.MaxTime, true)
}

// ComputeWindow runs the windowed sweep using this Sweeper's buffers. See
// the package-level ComputeWindow for semantics.
func (sw *Sweeper) ComputeWindow(events []trace.Event, lo, hi vclock.Time) *Result {
	return sw.computeWindow(events, lo, hi, true)
}

// ComputeWindowInto runs the windowed sweep accumulating into res, whose
// maps are cleared and refilled (and allocated if nil). Callers that fold
// each window's result into an aggregate and discard it — the streaming
// engine does this once per shard — reuse one Result per worker so the
// per-window cost stays out of the allocator entirely.
func (sw *Sweeper) ComputeWindowInto(res *Result, events []trace.Event, lo, hi vclock.Time) {
	if res.ByKey == nil {
		res.ByKey = map[Key]vclock.Duration{}
	} else {
		clear(res.ByKey)
	}
	if res.Transitions == nil {
		res.Transitions = map[TransitionKey]int{}
	} else {
		clear(res.Transitions)
	}
	res.SpanStart, res.SpanEnd = 0, 0
	sw.computeWindowInto(res, events, lo, hi, true)
}

func (sw *Sweeper) computeWindow(events []trace.Event, lo, hi vclock.Time, withTransitions bool) *Result {
	res := &Result{
		ByKey:       map[Key]vclock.Duration{},
		Transitions: map[TransitionKey]int{},
	}
	sw.computeWindowInto(res, events, lo, hi, withTransitions)
	return res
}

func (sw *Sweeper) computeWindowInto(res *Result, events []trace.Event, lo, hi vclock.Time, withTransitions bool) {
	// Pass 1: intern names/categories and collect window-relevant interval
	// boundaries. Span uses the unclipped extent of included events so a
	// partition of windows merges to the span Compute reports.
	sw.resetInterners()
	if cap(sw.dead) < len(events) {
		sw.dead = make([]bool, len(events))
	} else {
		sw.dead = sw.dead[:len(events)]
		clear(sw.dead)
	}
	sw.bounds = sw.bounds[:0]
	spanSet := false
	for i, e := range events {
		switch e.Kind {
		case trace.KindCPU, trace.KindGPU, trace.KindOp:
			if e.End <= e.Start {
				continue // zero-width intervals contribute nothing
			}
			if e.End <= lo || e.Start >= hi {
				continue // entirely outside the window
			}
			var id int32
			switch e.Kind {
			case trace.KindCPU, trace.KindGPU:
				id = sw.internCat(e.Cat)
			case trace.KindOp:
				id = sw.internOp(e.Name)
			}
			sw.bounds = append(sw.bounds,
				boundary{e.Start, int32(i), id, e.Kind, true},
				boundary{e.End, int32(i), id, e.Kind, false})
			if !spanSet || e.Start < res.SpanStart {
				res.SpanStart = e.Start
			}
			if !spanSet || e.End > res.SpanEnd {
				res.SpanEnd = e.End
			}
			spanSet = true
		}
	}
	sw.sortBounds(events)

	// The dense accumulator: (opID, resource set, catID) -> duration.
	nCats := len(sw.cats)
	grid := len(sw.opNames) * 4 * nCats
	if cap(sw.accum) < grid {
		sw.accum = make([]vclock.Duration, grid)
	} else {
		sw.accum = sw.accum[:grid]
		clear(sw.accum)
	}
	kernelCat := sw.catSlot[trace.CatGPUKernel] - 1 // -1 when no kernels exist

	// Pass 2: the sweep proper. Classification state persists across
	// elementary intervals; each boundary batch updates it in O(1)
	// amortized, and each interval reads the stack tops directly.
	sw.cpu.reset()
	sw.ops.reset()
	sw.gpu.reset()
	kernels := 0
	var prev vclock.Time
	first := true
	for bi := 0; bi < len(sw.bounds); {
		t := sw.bounds[bi].t
		if !first && t > prev {
			// Accumulate only the part of [prev, t) inside [lo, hi).
			s, e := prev, t
			if s < lo {
				s = lo
			}
			if e > hi {
				e = hi
			}
			if e > s {
				cpuTop, cpuOK := sw.cpu.top(sw.dead)
				gpuTop, gpuOK := sw.gpu.top(sw.dead)
				if cpuOK || gpuOK {
					opID := int32(0)
					if opTop, ok := sw.ops.top(sw.dead); ok {
						opID = opTop.id
					}
					var rset, cat int32
					if cpuOK {
						rset = int32(ResCPU)
						cat = cpuTop.id
					}
					if gpuOK {
						rset |= int32(ResGPU)
						if !cpuOK {
							if kernels > 0 {
								cat = kernelCat
							} else {
								cat = gpuTop.id
							}
						}
					}
					sw.accum[(opID*4+rset)*int32(nCats)+cat] += e.Sub(s)
				}
			}
		}
		for bi < len(sw.bounds) && sw.bounds[bi].t == t {
			b := sw.bounds[bi]
			switch b.kind {
			case trace.KindCPU:
				if b.open {
					sw.cpu.push(stackEntry{b.ev, b.id})
				} else {
					sw.cpu.close(b.ev, sw.dead)
				}
			case trace.KindOp:
				if b.open {
					sw.ops.push(stackEntry{b.ev, b.id})
				} else {
					sw.ops.close(b.ev, sw.dead)
				}
			case trace.KindGPU:
				if b.open {
					sw.gpu.push(stackEntry{b.ev, b.id})
					if b.id == kernelCat {
						kernels++
					}
				} else {
					sw.gpu.close(b.ev, sw.dead)
					if b.id == kernelCat {
						kernels--
					}
				}
			}
			bi++
		}
		prev = t
		first = false
	}

	// Materialize the dense grid into the public map shape.
	for op := range sw.opNames {
		for rset := 1; rset < 4; rset++ {
			base := (op*4 + rset) * nCats
			for c := 0; c < nCats; c++ {
				if d := sw.accum[base+c]; d != 0 {
					res.ByKey[Key{Op: sw.opNames[op], Res: ResourceSet(rset), Cat: sw.cats[c]}] = d
				}
			}
		}
	}

	if !withTransitions {
		return
	}
	// Transition markers are scoped to the innermost operation active at
	// the marker's timestamp. The segment table is built lazily so windows
	// without markers skip its sort entirely.
	built := false
	for _, e := range events {
		if e.Kind != trace.KindTransition || e.Start < lo || e.Start >= hi {
			continue
		}
		if !built {
			sw.buildSegments(events)
			built = true
		}
		res.Transitions[TransitionKey{Op: sw.opAt(e.Start), Label: e.Name}]++
	}
}

func (sw *Sweeper) resetInterners() {
	if sw.opIDs == nil {
		sw.opIDs = make(map[string]int32)
	} else {
		clear(sw.opIDs)
	}
	sw.opNames = append(sw.opNames[:0], UntrackedOp)
	// Seed the untracked name so an operation literally named UntrackedOp
	// shares its ID (and therefore its Key) instead of materializing a
	// second, clobbering entry.
	sw.opIDs[UntrackedOp] = 0
	for _, c := range sw.cats {
		sw.catSlot[c] = 0
	}
	sw.cats = sw.cats[:0]
}

func (sw *Sweeper) internOp(name string) int32 {
	if id, ok := sw.opIDs[name]; ok {
		return id
	}
	id := int32(len(sw.opNames))
	sw.opIDs[name] = id
	sw.opNames = append(sw.opNames, name)
	return id
}

func (sw *Sweeper) internCat(c trace.Category) int32 {
	if s := sw.catSlot[c]; s != 0 {
		return s - 1
	}
	sw.cats = append(sw.cats, c)
	sw.catSlot[c] = int32(len(sw.cats))
	return int32(len(sw.cats) - 1)
}

// sortBounds orders boundaries by time with closes before opens, so
// back-to-back intervals never appear concurrent. Opens at the same instant
// are ordered outermost-first per kind, which is what lets the sweep push
// them onto the stacks in nesting order; close order is immaterial (lazy
// deletion absorbs it) and tied down only for determinism. The sorter is a
// concrete sort.Interface kept in the Sweeper: sort.Slice's reflection
// swapper allocates per call and shows up at tiny-trace scale.
func (sw *Sweeper) sortBounds(events []trace.Event) {
	sw.sorter.bounds, sw.sorter.events = sw.bounds, events
	sort.Sort(&sw.sorter)
	sw.sorter.events = nil
}

// boundsSorter implements sort.Interface over a boundary slice.
type boundsSorter struct {
	bounds []boundary
	events []trace.Event
}

func (s *boundsSorter) Len() int      { return len(s.bounds) }
func (s *boundsSorter) Swap(i, j int) { s.bounds[i], s.bounds[j] = s.bounds[j], s.bounds[i] }

func (s *boundsSorter) Less(i, j int) bool {
	bi, bj := &s.bounds[i], &s.bounds[j]
	if bi.t != bj.t {
		return bi.t < bj.t
	}
	if bi.open != bj.open {
		return !bi.open
	}
	if !bi.open || bi.kind != bj.kind {
		return eventOrder(bi, bj)
	}
	switch bi.kind {
	case trace.KindCPU:
		if innerCPU(s.events[bi.ev], s.events[bj.ev]) {
			return false // i is more inner: push it later
		}
		if innerCPU(s.events[bj.ev], s.events[bi.ev]) {
			return true
		}
	case trace.KindOp:
		if innerOp(s.events[bi.ev], s.events[bj.ev]) {
			return false
		}
		if innerOp(s.events[bj.ev], s.events[bi.ev]) {
			return true
		}
	}
	return eventOrder(bi, bj)
}

// eventOrder is the deterministic fallback ordering for boundaries whose
// relative order cannot affect the sweep.
func eventOrder(a, b *boundary) bool {
	if a.kind != b.kind {
		return a.kind < b.kind
	}
	return a.ev < b.ev
}

// buildSegments constructs the innermost-op segment table for transition
// scoping: a mini-sweep over operation intervals only, recording the
// innermost operation of every elementary interval. Lookups then binary
// search the table instead of scanning the op list per marker.
func (sw *Sweeper) buildSegments(events []trace.Event) {
	sw.opEvs = sw.opEvs[:0]
	sw.segs = sw.segs[:0]
	for _, e := range events {
		if e.Kind == trace.KindOp && e.End > e.Start {
			sw.opEvs = append(sw.opEvs, e)
		}
	}
	if len(sw.opEvs) == 0 {
		return
	}
	sw.bounds = sw.bounds[:0]
	for i, e := range sw.opEvs {
		sw.bounds = append(sw.bounds,
			boundary{e.Start, int32(i), 0, trace.KindOp, true},
			boundary{e.End, int32(i), 0, trace.KindOp, false})
	}
	sw.sortBounds(sw.opEvs)
	if cap(sw.segDead) < len(sw.opEvs) {
		sw.segDead = make([]bool, len(sw.opEvs))
	} else {
		sw.segDead = sw.segDead[:len(sw.opEvs)]
		clear(sw.segDead)
	}
	sw.ops.reset()
	var prev vclock.Time
	first := true
	for bi := 0; bi < len(sw.bounds); {
		t := sw.bounds[bi].t
		if !first && t > prev {
			name := UntrackedOp
			if top, ok := sw.ops.top(sw.segDead); ok {
				name = sw.opEvs[top.ev].Name
			}
			if len(sw.segs) == 0 || sw.segs[len(sw.segs)-1].op != name {
				sw.segs = append(sw.segs, opSegment{prev, name})
			}
		}
		for bi < len(sw.bounds) && sw.bounds[bi].t == t {
			b := sw.bounds[bi]
			if b.open {
				sw.ops.push(stackEntry{b.ev, 0})
			} else {
				sw.ops.close(b.ev, sw.segDead)
			}
			bi++
		}
		prev = t
		first = false
	}
	// Sentinel: instants at or past the last boundary are untracked.
	if sw.segs[len(sw.segs)-1].op != UntrackedOp {
		sw.segs = append(sw.segs, opSegment{prev, UntrackedOp})
	}
}

// opAt returns the innermost operation covering t, or UntrackedOp —
// agreeing with duration attribution on which operation owns an instant,
// including under exact ties, because both derive from the same stack
// machine. The lookup is a binary search over the segment table.
func (sw *Sweeper) opAt(t vclock.Time) string {
	segs := sw.segs
	i := sort.Search(len(segs), func(i int) bool { return segs[i].start > t })
	if i == 0 {
		return UntrackedOp
	}
	return segs[i-1].op
}
