package overlap

import (
	"sort"

	"repro/internal/trace"
	"repro/internal/vclock"
)

// PhaseBreakdown summarizes one training phase (paper §3.1's
// rls.set_phase): its extent and the resource/category time inside it.
// Minigo's three phases — selfplay, sgd_updates, evaluation — are the
// paper's example.
type PhaseBreakdown struct {
	Name       string
	Start, End vclock.Time
	// CPU is CPU-busy time within the phase (including CPU+GPU overlap);
	// GPU is device-busy time within the phase.
	CPU, GPU vclock.Duration
	// ByCategory splits the CPU time by stack tier.
	ByCategory map[trace.Category]vclock.Duration
}

// Duration returns the phase extent.
func (p PhaseBreakdown) Duration() vclock.Duration { return p.End.Sub(p.Start) }

// Phases computes per-phase breakdowns for one process's events. Phases are
// non-overlapping by construction (SetPhase closes the previous phase);
// events spanning a phase boundary contribute the clipped portion.
func Phases(events []trace.Event) []PhaseBreakdown {
	var phases []PhaseBreakdown
	for _, e := range events {
		if e.Kind == trace.KindPhase && e.End > e.Start {
			phases = append(phases, PhaseBreakdown{
				Name:       e.Name,
				Start:      e.Start,
				End:        e.End,
				ByCategory: map[trace.Category]vclock.Duration{},
			})
		}
	}
	sort.Slice(phases, func(i, j int) bool { return phases[i].Start < phases[j].Start })
	if len(phases) == 0 {
		return nil
	}
	// One pooled sweeper serves every phase window: its scratch buffers are
	// sized by the first sweep and reused by the rest.
	sw := sweepers.Get().(*Sweeper)
	defer sweepers.Put(sw)
	for pi := range phases {
		p := &phases[pi]
		// Run the overlap sweep restricted to the phase window, without
		// transition scoping (only the resource/category sums below are
		// consumed); the per-operation split the full sweep adds
		// collapses back out in those sums.
		res := sw.computeWindow(events, p.Start, p.End, false)
		for k, d := range res.ByKey {
			if k.Res&ResCPU != 0 {
				p.CPU += d
				p.ByCategory[k.Cat] += d
			}
			if k.Res&ResGPU != 0 {
				p.GPU += d
			}
		}
	}
	return phases
}

// PhasesByProc computes phase breakdowns for every process in the trace.
func PhasesByProc(t *trace.Trace) map[trace.ProcID][]PhaseBreakdown {
	out := map[trace.ProcID][]PhaseBreakdown{}
	for _, p := range t.ProcIDs() {
		if ph := Phases(t.ProcEvents(p)); ph != nil {
			out[p] = ph
		}
	}
	return out
}
