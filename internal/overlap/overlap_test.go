package overlap

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/trace"
	"repro/internal/vclock"
)

func ms(f float64) vclock.Time { return vclock.Time(f * float64(vclock.Millisecond)) }

func msd(f float64) vclock.Duration { return vclock.Duration(f * float64(vclock.Millisecond)) }

// TestFigure3WorkedExample reconstructs the paper's Figure 3 exactly:
// a 3.74 ms trace with an mcts_tree_search operation containing two
// expand_leaf operations, two GPU kernels overlapping the latter, and the
// published region sums:
//
//	CPU, mcts_tree_search       = (a) + (e)             = 1.25 ms
//	CPU, expand_leaf            = (b) + (d) + (f) + (h) = 0.79 ms
//	GPU, CPU, expand_leaf       = (c) + (g)             = 1.70 ms
func TestFigure3WorkedExample(t *testing.T) {
	events := []trace.Event{
		// Root CPU activity (Python) across the whole window.
		{Kind: trace.KindCPU, Cat: trace.CatPython, Start: ms(0), End: ms(3.74), Name: "python"},
		// Operations.
		{Kind: trace.KindOp, Start: ms(0), End: ms(3.74), Name: "mcts_tree_search"},
		{Kind: trace.KindOp, Start: ms(0.75), End: ms(2.10), Name: "expand_leaf"},
		{Kind: trace.KindOp, Start: ms(2.60), End: ms(3.74), Name: "expand_leaf"},
		// GPU kernels: regions (c) and (g).
		{Kind: trace.KindGPU, Cat: trace.CatGPUKernel, Start: ms(1.05), End: ms(1.90), Name: "expand"},
		{Kind: trace.KindGPU, Cat: trace.CatGPUKernel, Start: ms(2.75), End: ms(3.60), Name: "expand"},
	}
	res := Compute(events)

	if got, want := res.Dur("mcts_tree_search", ResCPU, trace.CatPython), msd(1.25); got != want {
		t.Errorf("CPU mcts_tree_search = %v, want %v", got, want)
	}
	if got, want := res.Dur("expand_leaf", ResCPU, trace.CatPython), msd(0.79); got != want {
		t.Errorf("CPU expand_leaf = %v, want %v", got, want)
	}
	if got, want := res.Dur("expand_leaf", ResCPU|ResGPU, trace.CatPython), msd(1.70); got != want {
		t.Errorf("CPU+GPU expand_leaf = %v, want %v", got, want)
	}
	if got, want := res.Total(), msd(3.74); got != want {
		t.Errorf("total = %v, want %v", got, want)
	}
}

func TestInnermostCPUCategoryWins(t *testing.T) {
	events := []trace.Event{
		{Kind: trace.KindCPU, Cat: trace.CatPython, Start: 0, End: 100, Name: "python"},
		{Kind: trace.KindCPU, Cat: trace.CatBackend, Start: 20, End: 80, Name: "run"},
		{Kind: trace.KindCPU, Cat: trace.CatCUDA, Start: 40, End: 50, Name: "cudaLaunchKernel"},
	}
	res := Compute(events)
	if got := res.Dur(UntrackedOp, ResCPU, trace.CatPython); got != 40 {
		t.Errorf("Python time = %v, want 40", got)
	}
	if got := res.Dur(UntrackedOp, ResCPU, trace.CatBackend); got != 50 {
		t.Errorf("Backend time = %v, want 50", got)
	}
	if got := res.Dur(UntrackedOp, ResCPU, trace.CatCUDA); got != 10 {
		t.Errorf("CUDA time = %v, want 10", got)
	}
}

func TestGPUOnlyRegions(t *testing.T) {
	events := []trace.Event{
		{Kind: trace.KindCPU, Cat: trace.CatPython, Start: 0, End: 50, Name: "python"},
		{Kind: trace.KindGPU, Cat: trace.CatGPUKernel, Start: 40, End: 90, Name: "k"},
	}
	res := Compute(events)
	if got := res.Dur(UntrackedOp, ResCPU, trace.CatPython); got != 40 {
		t.Errorf("CPU-only = %v, want 40", got)
	}
	if got := res.Dur(UntrackedOp, ResCPU|ResGPU, trace.CatPython); got != 10 {
		t.Errorf("CPU+GPU = %v, want 10", got)
	}
	if got := res.Dur(UntrackedOp, ResGPU, trace.CatGPUKernel); got != 40 {
		t.Errorf("GPU-only = %v, want 40", got)
	}
}

func TestKernelPrecedenceOverMemcpy(t *testing.T) {
	events := []trace.Event{
		{Kind: trace.KindGPU, Cat: trace.CatGPUMemcpy, Start: 0, End: 100, Name: "m"},
		{Kind: trace.KindGPU, Cat: trace.CatGPUKernel, Start: 40, End: 60, Name: "k"},
	}
	res := Compute(events)
	if got := res.Dur(UntrackedOp, ResGPU, trace.CatGPUKernel); got != 20 {
		t.Errorf("kernel-labelled GPU time = %v, want 20", got)
	}
	if got := res.Dur(UntrackedOp, ResGPU, trace.CatGPUMemcpy); got != 80 {
		t.Errorf("memcpy-labelled GPU time = %v, want 80", got)
	}
}

func TestIdleGapsAttributedNowhere(t *testing.T) {
	events := []trace.Event{
		{Kind: trace.KindCPU, Cat: trace.CatPython, Start: 0, End: 10, Name: "a"},
		{Kind: trace.KindCPU, Cat: trace.CatPython, Start: 50, End: 60, Name: "b"},
	}
	res := Compute(events)
	if got := res.Total(); got != 20 {
		t.Errorf("total = %v, want 20 (idle gap excluded)", got)
	}
}

func TestZeroWidthEventsIgnored(t *testing.T) {
	events := []trace.Event{
		{Kind: trace.KindCPU, Cat: trace.CatPython, Start: 5, End: 5, Name: "zero"},
	}
	res := Compute(events)
	if got := res.Total(); got != 0 {
		t.Errorf("total = %v, want 0", got)
	}
}

func TestTransitionScoping(t *testing.T) {
	events := []trace.Event{
		{Kind: trace.KindOp, Start: 0, End: 100, Name: "inference"},
		{Kind: trace.KindOp, Start: 100, End: 200, Name: "simulation"},
		{Kind: trace.KindTransition, Start: 10, End: 10, Name: trace.TransPythonToBackend},
		{Kind: trace.KindTransition, Start: 20, End: 20, Name: trace.TransPythonToBackend},
		{Kind: trace.KindTransition, Start: 150, End: 150, Name: trace.TransPythonToSimulator},
		{Kind: trace.KindTransition, Start: 250, End: 250, Name: trace.TransPythonToSimulator},
	}
	res := Compute(events)
	if got := res.TransitionCount("inference", trace.TransPythonToBackend); got != 2 {
		t.Errorf("inference backend transitions = %d, want 2", got)
	}
	if got := res.TransitionCount("simulation", trace.TransPythonToSimulator); got != 1 {
		t.Errorf("simulation simulator transitions = %d, want 1", got)
	}
	if got := res.TransitionCount(UntrackedOp, trace.TransPythonToSimulator); got != 1 {
		t.Errorf("untracked simulator transitions = %d, want 1", got)
	}
	if got := res.TotalTransitions(trace.TransPythonToSimulator); got != 2 {
		t.Errorf("total simulator transitions = %d, want 2", got)
	}
}

func TestNestedOpsInnermostWins(t *testing.T) {
	events := []trace.Event{
		{Kind: trace.KindCPU, Cat: trace.CatPython, Start: 0, End: 100, Name: "python"},
		{Kind: trace.KindOp, Start: 0, End: 100, Name: "outer"},
		{Kind: trace.KindOp, Start: 30, End: 70, Name: "inner"},
	}
	res := Compute(events)
	if got := res.Dur("outer", ResCPU, trace.CatPython); got != 60 {
		t.Errorf("outer = %v, want 60", got)
	}
	if got := res.Dur("inner", ResCPU, trace.CatPython); got != 40 {
		t.Errorf("inner = %v, want 40", got)
	}
}

func TestResultHelpers(t *testing.T) {
	events := []trace.Event{
		{Kind: trace.KindCPU, Cat: trace.CatPython, Start: 0, End: 100, Name: "python"},
		{Kind: trace.KindCPU, Cat: trace.CatBackend, Start: 10, End: 30, Name: "run"},
		{Kind: trace.KindGPU, Cat: trace.CatGPUKernel, Start: 20, End: 40, Name: "k"},
		{Kind: trace.KindOp, Start: 0, End: 100, Name: "step"},
	}
	res := Compute(events)
	if got := res.CPUTime("step"); got != 100 {
		t.Errorf("CPUTime = %v, want 100", got)
	}
	if got := res.GPUTime("step"); got != 20 {
		t.Errorf("GPUTime = %v, want 20", got)
	}
	if got := res.CategoryCPUTime("step", trace.CatBackend); got != 20 {
		t.Errorf("CategoryCPUTime(backend) = %v, want 20", got)
	}
	if got := res.OpTotal("step"); got != 100 {
		t.Errorf("OpTotal = %v, want 100", got)
	}
	names := res.OpNames()
	if len(names) != 1 || names[0] != "step" {
		t.Errorf("OpNames = %v", names)
	}
	if got := res.TotalGPUTime(); got != 20 {
		t.Errorf("TotalGPUTime = %v, want 20", got)
	}
	if got := res.TotalCategoryCPUTime(trace.CatPython); got != 80 {
		t.Errorf("TotalCategoryCPUTime(python) = %v, want 80", got)
	}
}

func TestMergeResults(t *testing.T) {
	a := Compute([]trace.Event{
		{Kind: trace.KindCPU, Cat: trace.CatPython, Start: 0, End: 10, Name: "p"},
	})
	b := Compute([]trace.Event{
		{Kind: trace.KindCPU, Cat: trace.CatPython, Start: 0, End: 15, Name: "p"},
	})
	a.Merge(b)
	if got := a.Dur(UntrackedOp, ResCPU, trace.CatPython); got != 25 {
		t.Errorf("merged python = %v, want 25", got)
	}
}

// referenceCompute is a brute-force re-implementation of the sweep: it
// evaluates the attribution at every unit timestep, picking innermost
// events with the same innerCPU/innerOp comparators the sweep uses so that
// exact ties resolve identically. Used as the oracle in the property tests.
func referenceCompute(events []trace.Event, horizon vclock.Time) map[Key]vclock.Duration {
	out := map[Key]vclock.Duration{}
	for tm := vclock.Time(0); tm < horizon; tm++ {
		var cpu, gpuEv, op *trace.Event
		for i := range events {
			e := &events[i]
			if e.Start > tm || tm >= e.End {
				continue
			}
			switch e.Kind {
			case trace.KindCPU:
				if cpu == nil || innerCPU(*e, *cpu) {
					cpu = e
				}
			case trace.KindGPU:
				if gpuEv == nil || (e.Cat == trace.CatGPUKernel && gpuEv.Cat != trace.CatGPUKernel) {
					gpuEv = e
				}
			case trace.KindOp:
				if op == nil || innerOp(*e, *op) {
					op = e
				}
			}
		}
		if cpu == nil && gpuEv == nil {
			continue
		}
		k := Key{Op: UntrackedOp}
		if op != nil {
			k.Op = op.Name
		}
		if cpu != nil {
			k.Res |= ResCPU
			k.Cat = cpu.Cat
		}
		if gpuEv != nil {
			k.Res |= ResGPU
			if cpu == nil {
				k.Cat = gpuEv.Cat
			}
		}
		out[k]++
	}
	return out
}

// genNestedEvents builds a random but structurally valid event set:
// properly nested CPU events, properly nested ops, and arbitrary GPU
// intervals, all within [0, horizon).
func genNestedEvents(rng *rand.Rand, horizon vclock.Time) []trace.Event {
	var events []trace.Event
	// Nested CPU stack: python root, then random backend/sim segments
	// with optional CUDA children.
	events = append(events, trace.Event{
		Kind: trace.KindCPU, Cat: trace.CatPython, Start: 0, End: horizon, Name: "python",
	})
	cursor := vclock.Time(rng.Int63n(5))
	for cursor < horizon-4 {
		segLen := vclock.Duration(2 + rng.Int63n(20))
		end := cursor.Add(segLen)
		if end > horizon {
			end = horizon
		}
		cat := trace.CatBackend
		if rng.Intn(2) == 0 {
			cat = trace.CatSimulator
		}
		events = append(events, trace.Event{
			Kind: trace.KindCPU, Cat: cat, Start: cursor, End: end, Name: "native",
		})
		if cat == trace.CatBackend && end.Sub(cursor) > 4 {
			innerStart := cursor.Add(1)
			innerEnd := end.Add(-1)
			events = append(events, trace.Event{
				Kind: trace.KindCPU, Cat: trace.CatCUDA,
				Start: innerStart, End: innerEnd, Name: "api",
			})
		}
		cursor = end.Add(vclock.Duration(rng.Int63n(8)))
	}
	// GPU intervals: arbitrary, may overlap everything.
	for i := 0; i < rng.Intn(6); i++ {
		s := vclock.Time(rng.Int63n(int64(horizon)))
		e := s.Add(vclock.Duration(1 + rng.Int63n(30)))
		if e > horizon {
			e = horizon
		}
		cat := trace.CatGPUKernel
		if rng.Intn(3) == 0 {
			cat = trace.CatGPUMemcpy
		}
		events = append(events, trace.Event{Kind: trace.KindGPU, Cat: cat, Start: s, End: e, Name: "k"})
	}
	// Nested ops: two levels.
	opStart := vclock.Time(rng.Int63n(int64(horizon) / 2))
	opEnd := opStart.Add(vclock.Duration(rng.Int63n(int64(horizon)-int64(opStart)))) + 1
	if opEnd > horizon {
		opEnd = horizon
	}
	events = append(events, trace.Event{Kind: trace.KindOp, Start: opStart, End: opEnd, Name: "outer"})
	if opEnd.Sub(opStart) > 6 {
		events = append(events, trace.Event{
			Kind: trace.KindOp, Start: opStart.Add(2), End: opEnd.Add(-2), Name: "inner",
		})
	}
	return events
}

// genAdversarialEvents generates event sets with none of the structure the
// instrumentation guarantees: CPU events of arbitrary categories that
// partially overlap (so closes arrive in non-LIFO order), timestamps
// snapped to a coarse grid (so exact start/end ties are common), ops that
// share names and boundaries, zero-width intervals, GPU events everywhere,
// and transition markers landing on exact boundaries.
func genAdversarialEvents(rng *rand.Rand, horizon vclock.Time) []trace.Event {
	cpuCats := []trace.Category{trace.CatPython, trace.CatSimulator, trace.CatBackend, trace.CatCUDA}
	gpuCats := []trace.Category{trace.CatGPUKernel, trace.CatGPUMemcpy}
	opNames := []string{"alpha", "beta", "gamma", UntrackedOp}
	labels := []string{trace.TransPythonToBackend, trace.TransPythonToSimulator, trace.TransBackendToCUDA}
	grid := vclock.Time(1 + rng.Int63n(6))
	randT := func() vclock.Time {
		return vclock.Time(rng.Int63n(int64(horizon)/int64(grid))) * grid
	}
	n := 2 + rng.Intn(40)
	events := make([]trace.Event, 0, n)
	for i := 0; i < n; i++ {
		s, e := randT(), randT()
		if e < s {
			s, e = e, s
		}
		if rng.Intn(6) == 0 {
			e = s // zero-width
		}
		switch rng.Intn(6) {
		case 0, 1:
			events = append(events, trace.Event{
				Kind: trace.KindCPU, Cat: cpuCats[rng.Intn(len(cpuCats))],
				Start: s, End: e, Name: "cpu",
			})
		case 2:
			events = append(events, trace.Event{
				Kind: trace.KindGPU, Cat: gpuCats[rng.Intn(len(gpuCats))],
				Start: s, End: e, Name: "k",
			})
		case 3, 4:
			events = append(events, trace.Event{
				Kind: trace.KindOp, Start: s, End: e,
				Name: opNames[rng.Intn(len(opNames))],
			})
		default:
			events = append(events, trace.Event{
				Kind: trace.KindTransition, Start: s, End: s,
				Name: labels[rng.Intn(len(labels))],
			})
		}
	}
	return events
}

func resultsEqual(a, b *Result) bool {
	if len(a.ByKey) != len(b.ByKey) || len(a.Transitions) != len(b.Transitions) {
		return false
	}
	for k, d := range a.ByKey {
		if b.ByKey[k] != d {
			return false
		}
	}
	for k, n := range a.Transitions {
		if b.Transitions[k] != n {
			return false
		}
	}
	return a.SpanStart == b.SpanStart && a.SpanEnd == b.SpanEnd
}

// TestSweepMatchesReferenceSweepAdversarial: on adversarial traces (exact
// ties, non-LIFO close order, arbitrary overlap) the incremental sweep must
// be byte-identical — ByKey, Transitions, and Span — to the retained
// reference implementation.
func TestSweepMatchesReferenceSweepAdversarial(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		events := genAdversarialEvents(rng, 200)
		return resultsEqual(Compute(events), refCompute(events))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestAdversarialBruteForceProperty checks the incremental sweep against
// the unit-timestep oracle on adversarial traces (the oracle cannot check
// Transitions or Span, but evaluates attribution from first principles).
func TestAdversarialBruteForceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const horizon = vclock.Time(160)
		events := genAdversarialEvents(rng, horizon)
		got := Compute(events).ByKey
		want := referenceCompute(events, horizon)
		if len(got) != len(want) {
			return false
		}
		for k, d := range want {
			if got[k] != d {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestWindowPartitionProperty: for any partition of the timeline into 1–8
// windows, the per-window sweeps must (a) each match the reference sweep on
// that window and (b) sum to the whole-timeline result exactly — the
// property the sharded analysis engine relies on.
func TestWindowPartitionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const horizon = vclock.Time(180)
		var events []trace.Event
		if rng.Intn(2) == 0 {
			events = genAdversarialEvents(rng, horizon)
		} else {
			events = genNestedEvents(rng, horizon)
		}
		want := Compute(events)

		// Random cut points partition (-inf, +inf).
		nCuts := rng.Intn(8)
		cuts := make([]vclock.Time, 0, nCuts+2)
		cuts = append(cuts, vclock.MinTime)
		for i := 0; i < nCuts; i++ {
			cuts = append(cuts, vclock.Time(rng.Int63n(int64(horizon)+20)-10))
		}
		cuts = append(cuts, vclock.MaxTime)
		sort.Slice(cuts, func(i, j int) bool { return cuts[i] < cuts[j] })

		sum := &Result{
			ByKey:       map[Key]vclock.Duration{},
			Transitions: map[TransitionKey]int{},
		}
		spanSet := false
		for i := 0; i+1 < len(cuts); i++ {
			lo, hi := cuts[i], cuts[i+1]
			if lo == hi {
				continue
			}
			part := ComputeWindow(events, lo, hi)
			if !resultsEqual(part, refComputeWindow(events, lo, hi)) {
				return false
			}
			for k, d := range part.ByKey {
				sum.ByKey[k] += d
			}
			for k, n := range part.Transitions {
				sum.Transitions[k] += n
			}
			if part.SpanStart == 0 && part.SpanEnd == 0 && len(part.ByKey) == 0 {
				continue // window saw no interval events
			}
			if !spanSet || part.SpanStart < sum.SpanStart {
				sum.SpanStart = part.SpanStart
			}
			if !spanSet || part.SpanEnd > sum.SpanEnd {
				sum.SpanEnd = part.SpanEnd
			}
			spanSet = true
		}
		return resultsEqual(sum, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestNonLIFOCloseOrder pins the adversarial case the innermost stacks must
// absorb: partially overlapping CPU events whose closes arrive in the
// opposite order from a call stack's.
func TestNonLIFOCloseOrder(t *testing.T) {
	events := []trace.Event{
		{Kind: trace.KindCPU, Cat: trace.CatPython, Start: 0, End: 60, Name: "a"},
		{Kind: trace.KindCPU, Cat: trace.CatBackend, Start: 10, End: 40, Name: "b"},
		// c starts inside b but outlives it — closes are non-LIFO.
		{Kind: trace.KindCPU, Cat: trace.CatSimulator, Start: 20, End: 90, Name: "c"},
		{Kind: trace.KindGPU, Cat: trace.CatGPUMemcpy, Start: 30, End: 70, Name: "m"},
	}
	got := Compute(events)
	if !resultsEqual(got, refCompute(events)) {
		t.Fatalf("non-LIFO close order diverges from reference:\n%v\nvs\n%v", got.ByKey, refCompute(events).ByKey)
	}
	// c (started 20, latest start) is innermost from 20 onward — including
	// after b's non-LIFO close at 40 — so the whole GPU overlap [30,70)
	// lands on it.
	if d := got.Dur(UntrackedOp, ResCPU|ResGPU, trace.CatSimulator); d != 40 {
		t.Fatalf("simulator CPU+GPU time = %v, want 40 (c innermost over [30,70))", d)
	}
}

// TestGPUOutOfDomainCategory: the chunk decode path never validates
// events, so a KindGPU event can reach the sweep with a category outside
// {kernel, memcpy}. GPU-only intervals must label it with the event's own
// category, exactly like the reference sweep — not collapse it to memcpy.
func TestGPUOutOfDomainCategory(t *testing.T) {
	events := []trace.Event{
		{Kind: trace.KindGPU, Cat: trace.CatNone, Start: 0, End: 40, Name: "weird"},
		{Kind: trace.KindGPU, Cat: trace.CatGPUKernel, Start: 10, End: 20, Name: "k"},
		{Kind: trace.KindCPU, Cat: trace.CatPython, Start: 30, End: 35, Name: "py"},
	}
	got := Compute(events)
	if !resultsEqual(got, refCompute(events)) {
		t.Fatalf("out-of-domain GPU category diverges from reference:\n%v\nvs\n%v",
			got.ByKey, refCompute(events).ByKey)
	}
	if d := got.Dur(UntrackedOp, ResGPU, trace.CatNone); d != 25 {
		t.Fatalf("GPU-only CatNone time = %v, want 25 ([0,10)+[20,30)+[35,40))", d)
	}
	if d := got.Dur(UntrackedOp, ResGPU, trace.CatGPUKernel); d != 10 {
		t.Fatalf("kernel-labelled time = %v, want 10 (kernel precedence over [10,20))", d)
	}
}

// TestExactTieClassification pins exact-tie behavior: events sharing both
// endpoints resolve by the deterministic comparator chain, identically to
// the reference sweep.
func TestExactTieClassification(t *testing.T) {
	events := []trace.Event{
		{Kind: trace.KindCPU, Cat: trace.CatSimulator, Start: 0, End: 50, Name: "sim"},
		{Kind: trace.KindCPU, Cat: trace.CatBackend, Start: 0, End: 50, Name: "backend"},
		{Kind: trace.KindOp, Start: 0, End: 50, Name: "zz"},
		{Kind: trace.KindOp, Start: 0, End: 50, Name: "aa"},
	}
	got := Compute(events)
	if !resultsEqual(got, refCompute(events)) {
		t.Fatal("exact ties diverge from reference")
	}
	// Equal start and rank: higher Cat wins (CatBackend > CatSimulator is
	// false — CatSimulator=2 < CatBackend=3, so Backend wins); equal op
	// extents: lexicographically smaller name wins.
	if d := got.Dur("aa", ResCPU, trace.CatBackend); d != 50 {
		t.Fatalf("tie resolution: got %v for (aa, CPU, Backend), want 50; full=%v", d, got.ByKey)
	}
}

func TestSweepMatchesBruteForceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const horizon = vclock.Time(120)
		events := genNestedEvents(rng, horizon)
		got := Compute(events).ByKey
		want := referenceCompute(events, horizon)
		if len(got) != len(want) {
			return false
		}
		for k, d := range want {
			if got[k] != d {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestOrderInvarianceProperty: Compute must be a pure function of the event
// *set* — shuffling the input slice never changes the result.
func TestOrderInvarianceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const horizon = vclock.Time(100)
		events := genNestedEvents(rng, horizon)
		want := Compute(events).ByKey
		shuffled := append([]trace.Event(nil), events...)
		rng.Shuffle(len(shuffled), func(i, j int) {
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		})
		got := Compute(shuffled).ByKey
		if len(got) != len(want) {
			return false
		}
		for k, d := range want {
			if got[k] != d {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestTotalConservation: attributed time must exactly equal the union of
// busy time (no double counting, nothing dropped).
func TestTotalConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const horizon = vclock.Time(150)
		events := genNestedEvents(rng, horizon)
		res := Compute(events)
		// Union of all CPU/GPU interval coverage, computed directly.
		covered := make([]bool, horizon)
		for _, e := range events {
			if e.Kind != trace.KindCPU && e.Kind != trace.KindGPU {
				continue
			}
			for tm := e.Start; tm < e.End && tm < horizon; tm++ {
				covered[tm] = true
			}
		}
		var union vclock.Duration
		for _, c := range covered {
			if c {
				union++
			}
		}
		return res.Total() == union
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
