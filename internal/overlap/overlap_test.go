package overlap

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/trace"
	"repro/internal/vclock"
)

func ms(f float64) vclock.Time { return vclock.Time(f * float64(vclock.Millisecond)) }

func msd(f float64) vclock.Duration { return vclock.Duration(f * float64(vclock.Millisecond)) }

// TestFigure3WorkedExample reconstructs the paper's Figure 3 exactly:
// a 3.74 ms trace with an mcts_tree_search operation containing two
// expand_leaf operations, two GPU kernels overlapping the latter, and the
// published region sums:
//
//	CPU, mcts_tree_search       = (a) + (e)             = 1.25 ms
//	CPU, expand_leaf            = (b) + (d) + (f) + (h) = 0.79 ms
//	GPU, CPU, expand_leaf       = (c) + (g)             = 1.70 ms
func TestFigure3WorkedExample(t *testing.T) {
	events := []trace.Event{
		// Root CPU activity (Python) across the whole window.
		{Kind: trace.KindCPU, Cat: trace.CatPython, Start: ms(0), End: ms(3.74), Name: "python"},
		// Operations.
		{Kind: trace.KindOp, Start: ms(0), End: ms(3.74), Name: "mcts_tree_search"},
		{Kind: trace.KindOp, Start: ms(0.75), End: ms(2.10), Name: "expand_leaf"},
		{Kind: trace.KindOp, Start: ms(2.60), End: ms(3.74), Name: "expand_leaf"},
		// GPU kernels: regions (c) and (g).
		{Kind: trace.KindGPU, Cat: trace.CatGPUKernel, Start: ms(1.05), End: ms(1.90), Name: "expand"},
		{Kind: trace.KindGPU, Cat: trace.CatGPUKernel, Start: ms(2.75), End: ms(3.60), Name: "expand"},
	}
	res := Compute(events)

	if got, want := res.Dur("mcts_tree_search", ResCPU, trace.CatPython), msd(1.25); got != want {
		t.Errorf("CPU mcts_tree_search = %v, want %v", got, want)
	}
	if got, want := res.Dur("expand_leaf", ResCPU, trace.CatPython), msd(0.79); got != want {
		t.Errorf("CPU expand_leaf = %v, want %v", got, want)
	}
	if got, want := res.Dur("expand_leaf", ResCPU|ResGPU, trace.CatPython), msd(1.70); got != want {
		t.Errorf("CPU+GPU expand_leaf = %v, want %v", got, want)
	}
	if got, want := res.Total(), msd(3.74); got != want {
		t.Errorf("total = %v, want %v", got, want)
	}
}

func TestInnermostCPUCategoryWins(t *testing.T) {
	events := []trace.Event{
		{Kind: trace.KindCPU, Cat: trace.CatPython, Start: 0, End: 100, Name: "python"},
		{Kind: trace.KindCPU, Cat: trace.CatBackend, Start: 20, End: 80, Name: "run"},
		{Kind: trace.KindCPU, Cat: trace.CatCUDA, Start: 40, End: 50, Name: "cudaLaunchKernel"},
	}
	res := Compute(events)
	if got := res.Dur(UntrackedOp, ResCPU, trace.CatPython); got != 40 {
		t.Errorf("Python time = %v, want 40", got)
	}
	if got := res.Dur(UntrackedOp, ResCPU, trace.CatBackend); got != 50 {
		t.Errorf("Backend time = %v, want 50", got)
	}
	if got := res.Dur(UntrackedOp, ResCPU, trace.CatCUDA); got != 10 {
		t.Errorf("CUDA time = %v, want 10", got)
	}
}

func TestGPUOnlyRegions(t *testing.T) {
	events := []trace.Event{
		{Kind: trace.KindCPU, Cat: trace.CatPython, Start: 0, End: 50, Name: "python"},
		{Kind: trace.KindGPU, Cat: trace.CatGPUKernel, Start: 40, End: 90, Name: "k"},
	}
	res := Compute(events)
	if got := res.Dur(UntrackedOp, ResCPU, trace.CatPython); got != 40 {
		t.Errorf("CPU-only = %v, want 40", got)
	}
	if got := res.Dur(UntrackedOp, ResCPU|ResGPU, trace.CatPython); got != 10 {
		t.Errorf("CPU+GPU = %v, want 10", got)
	}
	if got := res.Dur(UntrackedOp, ResGPU, trace.CatGPUKernel); got != 40 {
		t.Errorf("GPU-only = %v, want 40", got)
	}
}

func TestKernelPrecedenceOverMemcpy(t *testing.T) {
	events := []trace.Event{
		{Kind: trace.KindGPU, Cat: trace.CatGPUMemcpy, Start: 0, End: 100, Name: "m"},
		{Kind: trace.KindGPU, Cat: trace.CatGPUKernel, Start: 40, End: 60, Name: "k"},
	}
	res := Compute(events)
	if got := res.Dur(UntrackedOp, ResGPU, trace.CatGPUKernel); got != 20 {
		t.Errorf("kernel-labelled GPU time = %v, want 20", got)
	}
	if got := res.Dur(UntrackedOp, ResGPU, trace.CatGPUMemcpy); got != 80 {
		t.Errorf("memcpy-labelled GPU time = %v, want 80", got)
	}
}

func TestIdleGapsAttributedNowhere(t *testing.T) {
	events := []trace.Event{
		{Kind: trace.KindCPU, Cat: trace.CatPython, Start: 0, End: 10, Name: "a"},
		{Kind: trace.KindCPU, Cat: trace.CatPython, Start: 50, End: 60, Name: "b"},
	}
	res := Compute(events)
	if got := res.Total(); got != 20 {
		t.Errorf("total = %v, want 20 (idle gap excluded)", got)
	}
}

func TestZeroWidthEventsIgnored(t *testing.T) {
	events := []trace.Event{
		{Kind: trace.KindCPU, Cat: trace.CatPython, Start: 5, End: 5, Name: "zero"},
	}
	res := Compute(events)
	if got := res.Total(); got != 0 {
		t.Errorf("total = %v, want 0", got)
	}
}

func TestTransitionScoping(t *testing.T) {
	events := []trace.Event{
		{Kind: trace.KindOp, Start: 0, End: 100, Name: "inference"},
		{Kind: trace.KindOp, Start: 100, End: 200, Name: "simulation"},
		{Kind: trace.KindTransition, Start: 10, End: 10, Name: trace.TransPythonToBackend},
		{Kind: trace.KindTransition, Start: 20, End: 20, Name: trace.TransPythonToBackend},
		{Kind: trace.KindTransition, Start: 150, End: 150, Name: trace.TransPythonToSimulator},
		{Kind: trace.KindTransition, Start: 250, End: 250, Name: trace.TransPythonToSimulator},
	}
	res := Compute(events)
	if got := res.TransitionCount("inference", trace.TransPythonToBackend); got != 2 {
		t.Errorf("inference backend transitions = %d, want 2", got)
	}
	if got := res.TransitionCount("simulation", trace.TransPythonToSimulator); got != 1 {
		t.Errorf("simulation simulator transitions = %d, want 1", got)
	}
	if got := res.TransitionCount(UntrackedOp, trace.TransPythonToSimulator); got != 1 {
		t.Errorf("untracked simulator transitions = %d, want 1", got)
	}
	if got := res.TotalTransitions(trace.TransPythonToSimulator); got != 2 {
		t.Errorf("total simulator transitions = %d, want 2", got)
	}
}

func TestNestedOpsInnermostWins(t *testing.T) {
	events := []trace.Event{
		{Kind: trace.KindCPU, Cat: trace.CatPython, Start: 0, End: 100, Name: "python"},
		{Kind: trace.KindOp, Start: 0, End: 100, Name: "outer"},
		{Kind: trace.KindOp, Start: 30, End: 70, Name: "inner"},
	}
	res := Compute(events)
	if got := res.Dur("outer", ResCPU, trace.CatPython); got != 60 {
		t.Errorf("outer = %v, want 60", got)
	}
	if got := res.Dur("inner", ResCPU, trace.CatPython); got != 40 {
		t.Errorf("inner = %v, want 40", got)
	}
}

func TestResultHelpers(t *testing.T) {
	events := []trace.Event{
		{Kind: trace.KindCPU, Cat: trace.CatPython, Start: 0, End: 100, Name: "python"},
		{Kind: trace.KindCPU, Cat: trace.CatBackend, Start: 10, End: 30, Name: "run"},
		{Kind: trace.KindGPU, Cat: trace.CatGPUKernel, Start: 20, End: 40, Name: "k"},
		{Kind: trace.KindOp, Start: 0, End: 100, Name: "step"},
	}
	res := Compute(events)
	if got := res.CPUTime("step"); got != 100 {
		t.Errorf("CPUTime = %v, want 100", got)
	}
	if got := res.GPUTime("step"); got != 20 {
		t.Errorf("GPUTime = %v, want 20", got)
	}
	if got := res.CategoryCPUTime("step", trace.CatBackend); got != 20 {
		t.Errorf("CategoryCPUTime(backend) = %v, want 20", got)
	}
	if got := res.OpTotal("step"); got != 100 {
		t.Errorf("OpTotal = %v, want 100", got)
	}
	names := res.OpNames()
	if len(names) != 1 || names[0] != "step" {
		t.Errorf("OpNames = %v", names)
	}
	if got := res.TotalGPUTime(); got != 20 {
		t.Errorf("TotalGPUTime = %v, want 20", got)
	}
	if got := res.TotalCategoryCPUTime(trace.CatPython); got != 80 {
		t.Errorf("TotalCategoryCPUTime(python) = %v, want 80", got)
	}
}

func TestMergeResults(t *testing.T) {
	a := Compute([]trace.Event{
		{Kind: trace.KindCPU, Cat: trace.CatPython, Start: 0, End: 10, Name: "p"},
	})
	b := Compute([]trace.Event{
		{Kind: trace.KindCPU, Cat: trace.CatPython, Start: 0, End: 15, Name: "p"},
	})
	a.Merge(b)
	if got := a.Dur(UntrackedOp, ResCPU, trace.CatPython); got != 25 {
		t.Errorf("merged python = %v, want 25", got)
	}
}

// referenceCompute is a brute-force re-implementation of the sweep: it
// evaluates the attribution at every unit timestep. Used as the oracle in
// the property test.
func referenceCompute(events []trace.Event, horizon vclock.Time) map[Key]vclock.Duration {
	out := map[Key]vclock.Duration{}
	for tm := vclock.Time(0); tm < horizon; tm++ {
		var cpu, gpuEv, op *trace.Event
		for i := range events {
			e := &events[i]
			if e.Start > tm || tm >= e.End {
				continue
			}
			switch e.Kind {
			case trace.KindCPU:
				if cpu == nil || e.Start > cpu.Start ||
					(e.Start == cpu.Start && e.Cat.CPURank() > cpu.Cat.CPURank()) {
					cpu = e
				}
			case trace.KindGPU:
				if gpuEv == nil || (e.Cat == trace.CatGPUKernel && gpuEv.Cat != trace.CatGPUKernel) {
					gpuEv = e
				}
			case trace.KindOp:
				if op == nil || e.Start > op.Start || (e.Start == op.Start && e.End < op.End) {
					op = e
				}
			}
		}
		if cpu == nil && gpuEv == nil {
			continue
		}
		k := Key{Op: UntrackedOp}
		if op != nil {
			k.Op = op.Name
		}
		if cpu != nil {
			k.Res |= ResCPU
			k.Cat = cpu.Cat
		}
		if gpuEv != nil {
			k.Res |= ResGPU
			if cpu == nil {
				k.Cat = gpuEv.Cat
			}
		}
		out[k]++
	}
	return out
}

// genNestedEvents builds a random but structurally valid event set:
// properly nested CPU events, properly nested ops, and arbitrary GPU
// intervals, all within [0, horizon).
func genNestedEvents(rng *rand.Rand, horizon vclock.Time) []trace.Event {
	var events []trace.Event
	// Nested CPU stack: python root, then random backend/sim segments
	// with optional CUDA children.
	events = append(events, trace.Event{
		Kind: trace.KindCPU, Cat: trace.CatPython, Start: 0, End: horizon, Name: "python",
	})
	cursor := vclock.Time(rng.Int63n(5))
	for cursor < horizon-4 {
		segLen := vclock.Duration(2 + rng.Int63n(20))
		end := cursor.Add(segLen)
		if end > horizon {
			end = horizon
		}
		cat := trace.CatBackend
		if rng.Intn(2) == 0 {
			cat = trace.CatSimulator
		}
		events = append(events, trace.Event{
			Kind: trace.KindCPU, Cat: cat, Start: cursor, End: end, Name: "native",
		})
		if cat == trace.CatBackend && end.Sub(cursor) > 4 {
			innerStart := cursor.Add(1)
			innerEnd := end.Add(-1)
			events = append(events, trace.Event{
				Kind: trace.KindCPU, Cat: trace.CatCUDA,
				Start: innerStart, End: innerEnd, Name: "api",
			})
		}
		cursor = end.Add(vclock.Duration(rng.Int63n(8)))
	}
	// GPU intervals: arbitrary, may overlap everything.
	for i := 0; i < rng.Intn(6); i++ {
		s := vclock.Time(rng.Int63n(int64(horizon)))
		e := s.Add(vclock.Duration(1 + rng.Int63n(30)))
		if e > horizon {
			e = horizon
		}
		cat := trace.CatGPUKernel
		if rng.Intn(3) == 0 {
			cat = trace.CatGPUMemcpy
		}
		events = append(events, trace.Event{Kind: trace.KindGPU, Cat: cat, Start: s, End: e, Name: "k"})
	}
	// Nested ops: two levels.
	opStart := vclock.Time(rng.Int63n(int64(horizon) / 2))
	opEnd := opStart.Add(vclock.Duration(rng.Int63n(int64(horizon)-int64(opStart)))) + 1
	if opEnd > horizon {
		opEnd = horizon
	}
	events = append(events, trace.Event{Kind: trace.KindOp, Start: opStart, End: opEnd, Name: "outer"})
	if opEnd.Sub(opStart) > 6 {
		events = append(events, trace.Event{
			Kind: trace.KindOp, Start: opStart.Add(2), End: opEnd.Add(-2), Name: "inner",
		})
	}
	return events
}

func TestSweepMatchesBruteForceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const horizon = vclock.Time(120)
		events := genNestedEvents(rng, horizon)
		got := Compute(events).ByKey
		want := referenceCompute(events, horizon)
		if len(got) != len(want) {
			return false
		}
		for k, d := range want {
			if got[k] != d {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestOrderInvarianceProperty: Compute must be a pure function of the event
// *set* — shuffling the input slice never changes the result.
func TestOrderInvarianceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const horizon = vclock.Time(100)
		events := genNestedEvents(rng, horizon)
		want := Compute(events).ByKey
		shuffled := append([]trace.Event(nil), events...)
		rng.Shuffle(len(shuffled), func(i, j int) {
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		})
		got := Compute(shuffled).ByKey
		if len(got) != len(want) {
			return false
		}
		for k, d := range want {
			if got[k] != d {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestTotalConservation: attributed time must exactly equal the union of
// busy time (no double counting, nothing dropped).
func TestTotalConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const horizon = vclock.Time(150)
		events := genNestedEvents(rng, horizon)
		res := Compute(events)
		// Union of all CPU/GPU interval coverage, computed directly.
		covered := make([]bool, horizon)
		for _, e := range events {
			if e.Kind != trace.KindCPU && e.Kind != trace.KindGPU {
				continue
			}
			for tm := e.Start; tm < e.End && tm < horizon; tm++ {
				covered[tm] = true
			}
		}
		var union vclock.Duration
		for _, c := range covered {
			if c {
				union++
			}
		}
		return res.Total() == union
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
