//lint:file-ignore SA1019 this file deliberately exercises the deprecated legacy wrappers (they must stay byte-identical to the Engine)
package rlscope

import (
	"path/filepath"
	"testing"

	"repro/internal/trace"
)

// writeWorkloadTrace persists a profiled workload trace with small chunks so
// the streaming property tests cross many chunk boundaries.
func writeWorkloadTrace(t *testing.T, tr *Trace, chunkBytes int) string {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "trace")
	w, err := trace.NewWriter(dir, chunkBytes)
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	w.Append(tr.Events...)
	if err := w.Close(tr.Meta); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return dir
}

// TestAnalyzeDirMatchesParallel asserts the tentpole acceptance property on
// the public API: for randomized multi-process workload traces chunked on
// disk, AnalyzeDir is byte-identical to AnalyzeParallel(trace.ReadDir(dir))
// at Workers 1..8, with and without a MaxResidentBytes budget.
func TestAnalyzeDirMatchesParallel(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		tr := randomWorkloadTrace(seed)
		dir := writeWorkloadTrace(t, tr, 2048)
		loaded, err := trace.ReadDir(dir)
		if err != nil {
			t.Fatalf("seed %d: ReadDir: %v", seed, err)
		}
		want := renderResults(AnalyzeParallel(loaded, AnalysisOptions{Workers: 1}))
		for workers := 1; workers <= 8; workers++ {
			for _, budget := range []int64{0, 8 << 10} {
				got, err := AnalyzeDir(dir, AnalysisOptions{Workers: workers, MaxResidentBytes: budget})
				if err != nil {
					t.Fatalf("seed %d workers %d budget %d: AnalyzeDir: %v", seed, workers, budget, err)
				}
				if renderResults(got) != want {
					t.Fatalf("seed %d workers %d budget %d: AnalyzeDir diverges from AnalyzeParallel(ReadDir)",
						seed, workers, budget)
				}
			}
		}
	}
}

// TestAnalyzeDirRepeatable asserts run-to-run stability of the streaming
// path at full concurrency under a tight budget — neither scheduling order
// nor eviction timing may leak into results.
func TestAnalyzeDirRepeatable(t *testing.T) {
	tr := randomWorkloadTrace(55)
	dir := writeWorkloadTrace(t, tr, 2048)
	opts := AnalysisOptions{MaxResidentBytes: 4 << 10}
	first, err := AnalyzeDir(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	want := renderResults(first)
	for i := 0; i < 5; i++ {
		got, err := AnalyzeDir(dir, opts)
		if err != nil {
			t.Fatal(err)
		}
		if renderResults(got) != want {
			t.Fatalf("run %d: streaming result changed between identical invocations", i)
		}
	}
}

// TestAnalyzeDirReportsResidency asserts the public stats surface: a budget
// keeps the streaming engine's peak resident events below the materialized
// trace size on a realistic profiled workload.
func TestAnalyzeDirReportsResidency(t *testing.T) {
	tr := randomWorkloadTrace(8)
	tr.Sort()
	dir := writeWorkloadTrace(t, tr, 1024)
	_, stats, err := AnalyzeDirStats(dir, AnalysisOptions{Workers: 1, MaxResidentBytes: 8 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Events != len(tr.Events) {
		t.Fatalf("streamed %d events, trace has %d", stats.Events, len(tr.Events))
	}
	if stats.PeakResidentEvents >= len(tr.Events) {
		t.Fatalf("peak resident %d events, want below trace size %d", stats.PeakResidentEvents, len(tr.Events))
	}
	if stats.Chunks < 2 {
		t.Fatalf("expected multiple chunks, got %d", stats.Chunks)
	}
}
