package rlscope

import (
	"context"
	"path/filepath"
	"testing"

	"repro/internal/trace"
)

// engineDirResults streams a chunked trace directory through the Engine,
// returning results plus the run's streaming statistics.
func engineDirResults(dir string, opts ...EngineOption) (map[ProcID]*Result, StreamStats, error) {
	rep, err := NewEngine(opts...).Analyze(context.Background(), FromDir(dir))
	if err != nil {
		if rep != nil {
			return nil, rep.Stats, err
		}
		return nil, StreamStats{}, err
	}
	return rep.Results, rep.Stats, nil
}

// writeWorkloadTrace persists a profiled workload trace with small chunks so
// the streaming property tests cross many chunk boundaries.
func writeWorkloadTrace(t *testing.T, tr *Trace, chunkBytes int) string {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "trace")
	w, err := trace.NewWriter(dir, chunkBytes)
	if err != nil {
		t.Fatalf("NewWriter: %v", err)
	}
	w.Append(tr.Events...)
	if err := w.Close(tr.Meta); err != nil {
		t.Fatalf("Close: %v", err)
	}
	return dir
}

// TestEngineDirMatchesMaterialized asserts the tentpole acceptance property
// on the public API: for randomized multi-process workload traces chunked
// on disk, streaming FromDir is byte-identical to materializing the trace
// at Workers 1..8, with and without a MaxResidentBytes budget.
func TestEngineDirMatchesMaterialized(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		tr := randomWorkloadTrace(seed)
		dir := writeWorkloadTrace(t, tr, 2048)
		loaded, err := trace.ReadDir(dir)
		if err != nil {
			t.Fatalf("seed %d: ReadDir: %v", seed, err)
		}
		want := renderResults(engineResults(loaded, WithWorkers(1)))
		for workers := 1; workers <= 8; workers++ {
			for _, budget := range []int64{0, 8 << 10} {
				got, _, err := engineDirResults(dir, WithWorkers(workers), WithMaxResidentBytes(budget))
				if err != nil {
					t.Fatalf("seed %d workers %d budget %d: FromDir analysis: %v", seed, workers, budget, err)
				}
				if renderResults(got) != want {
					t.Fatalf("seed %d workers %d budget %d: streaming diverges from materialized",
						seed, workers, budget)
				}
			}
		}
	}
}

// TestEngineDirRepeatable asserts run-to-run stability of the streaming
// path at full concurrency under a tight budget — neither scheduling order
// nor eviction timing may leak into results.
func TestEngineDirRepeatable(t *testing.T) {
	tr := randomWorkloadTrace(55)
	dir := writeWorkloadTrace(t, tr, 2048)
	first, _, err := engineDirResults(dir, WithMaxResidentBytes(4<<10))
	if err != nil {
		t.Fatal(err)
	}
	want := renderResults(first)
	for i := 0; i < 5; i++ {
		got, _, err := engineDirResults(dir, WithMaxResidentBytes(4<<10))
		if err != nil {
			t.Fatal(err)
		}
		if renderResults(got) != want {
			t.Fatalf("run %d: streaming result changed between identical invocations", i)
		}
	}
}

// TestEngineDirReportsResidency asserts the public stats surface: a budget
// keeps the streaming engine's peak resident events below the materialized
// trace size on a realistic profiled workload.
func TestEngineDirReportsResidency(t *testing.T) {
	tr := randomWorkloadTrace(8)
	tr.Sort()
	dir := writeWorkloadTrace(t, tr, 1024)
	_, stats, err := engineDirResults(dir, WithWorkers(1), WithMaxResidentBytes(8<<10))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Events != len(tr.Events) {
		t.Fatalf("streamed %d events, trace has %d", stats.Events, len(tr.Events))
	}
	if stats.PeakResidentEvents >= len(tr.Events) {
		t.Fatalf("peak resident %d events, want below trace size %d", stats.PeakResidentEvents, len(tr.Events))
	}
	if stats.Chunks < 2 {
		t.Fatalf("expected multiple chunks, got %d", stats.Chunks)
	}
}
