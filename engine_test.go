package rlscope

import (
	"context"
	"errors"
	"testing"

	"repro/internal/analysis"
	"repro/internal/calib"
	"repro/internal/overlap"
	"repro/internal/trace"
	"repro/internal/vclock"
)

// sequentialOracle computes the ground-truth per-process breakdown with the
// plain sequential sweep — the path every engine configuration must be
// byte-identical to.
func sequentialOracle(tr *Trace) map[ProcID]*Result {
	out := map[ProcID]*Result{}
	for _, p := range tr.ProcIDs() {
		out[p] = overlap.Compute(tr.ProcEvents(p))
	}
	return out
}

// engineSources enumerates the three standard sources over one on-disk
// trace; the materialized source reloads the directory so every source sees
// the same bytes.
func engineSources(t *testing.T, tr *Trace, dir string) map[string]func() Source {
	t.Helper()
	return map[string]func() Source{
		"FromTrace": func() Source { return FromTrace(tr) },
		"FromDir":   func() Source { return FromDir(dir) },
		"FromReader": func() Source {
			r, err := OpenTraceDir(dir)
			if err != nil {
				t.Fatalf("OpenTraceDir: %v", err)
			}
			return FromReader(r)
		},
	}
}

// TestEngineSourceEquivalence is the tentpole acceptance property: for
// randomized instrumented multi-process workload traces, Engine.Analyze is
// byte-identical to the sequential oracle over all three sources ×
// workers 1..8 × resident budgets.
func TestEngineSourceEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		tr := randomWorkloadTrace(seed)
		dir := writeWorkloadTrace(t, tr, 2048)
		want := renderResults(sequentialOracle(tr))
		for name, mk := range engineSources(t, tr, dir) {
			for workers := 1; workers <= 8; workers++ {
				for _, budget := range []int64{0, 1, 8 << 10} {
					eng := NewEngine(WithWorkers(workers), WithMaxResidentBytes(budget))
					rep, err := eng.Analyze(context.Background(), mk())
					if err != nil {
						t.Fatalf("seed %d %s workers %d budget %d: %v", seed, name, workers, budget, err)
					}
					if got := renderResults(rep.Results); got != want {
						t.Fatalf("seed %d %s workers %d budget %d: Engine diverges from oracle",
							seed, name, workers, budget)
					}
					if rep.Corrected {
						t.Fatalf("seed %d %s: uncorrected run reported Corrected", seed, name)
					}
					if rep.Meta.Workload != tr.Meta.Workload {
						t.Fatalf("seed %d %s: report meta lost the workload label", seed, name)
					}
				}
			}
			// The stats surface against the same streaming run.
			if name == "FromDir" {
				got, stats, err := engineDirResults(dir, WithWorkers(3), WithMaxResidentBytes(4<<10))
				if err != nil {
					t.Fatalf("seed %d: FromDir with budget: %v", seed, err)
				}
				if renderResults(got) != want {
					t.Fatalf("seed %d: budgeted streaming run diverges from oracle", seed)
				}
				if stats.Events != len(tr.Events) {
					t.Fatalf("seed %d: streaming run decoded %d events, trace has %d",
						seed, stats.Events, len(tr.Events))
				}
			}
		}
	}
}

// syntheticCalibration builds a calibration covering every marker kind and
// every CUPTI API name present in the trace, with distinct nonzero costs so
// correction genuinely moves timestamps.
func syntheticCalibration(tr *Trace) *Calibration {
	cal := &Calibration{
		Annotation:    90 * vclock.Nanosecond,
		Interception:  210 * vclock.Nanosecond,
		CUDAIntercept: 340 * vclock.Nanosecond,
		CUPTI:         map[string]vclock.Duration{},
	}
	for _, e := range tr.Events {
		if e.Kind == trace.KindOverhead && e.Overhead == trace.OverheadCUPTI {
			if _, ok := cal.CUPTI[e.Name]; !ok {
				cal.CUPTI[e.Name] = vclock.Duration(120+30*len(cal.CUPTI)) * vclock.Nanosecond
			}
		}
	}
	return cal
}

// TestEngineCorrectionEquivalence asserts the new capability's acceptance
// property: WithCorrection over a streaming source produces results
// byte-identical to materialize-then-Correct-then-Analyze, for every worker
// count and resident budget — and under a budget it does so without holding
// the whole trace resident. A process recording nothing but overhead
// markers must vanish from corrected results on both paths.
func TestEngineCorrectionEquivalence(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		tr := randomWorkloadTrace(seed)
		// A process whose every event is an overhead marker: correction
		// erases it entirely.
		markerOnly := ProcID(97)
		start, _ := tr.Span()
		for i := 0; i < 5; i++ {
			at := start.Add(vclock.Duration(i) * vclock.Microsecond)
			tr.Events = append(tr.Events, Event{
				Kind: trace.KindOverhead, Overhead: trace.OverheadAnnotation,
				Proc: markerOnly, Start: at, End: at,
			})
		}
		tr.Sort()
		cal := syntheticCalibration(tr)
		dir := writeWorkloadTrace(t, tr, 2048)

		corrected := Correct(tr, cal)
		want := renderResults(sequentialOracle(corrected))
		if _, ok := sequentialOracle(corrected)[markerOnly]; ok {
			t.Fatalf("seed %d: oracle still contains the marker-only process", seed)
		}

		for name, mk := range engineSources(t, tr, dir) {
			for workers := 1; workers <= 8; workers += 3 {
				for _, budget := range []int64{0, 4 << 10} {
					eng := NewEngine(WithWorkers(workers), WithMaxResidentBytes(budget), WithCorrection(cal))
					rep, err := eng.Analyze(context.Background(), mk())
					if err != nil {
						t.Fatalf("seed %d %s workers %d budget %d: %v", seed, name, workers, budget, err)
					}
					if got := renderResults(rep.Results); got != want {
						t.Fatalf("seed %d %s workers %d budget %d: corrected Engine diverges from Correct-then-Analyze",
							seed, name, workers, budget)
					}
					if !rep.Corrected {
						t.Fatalf("seed %d %s: corrected run did not report Corrected", seed, name)
					}
					if _, ok := rep.Results[markerOnly]; ok {
						t.Fatalf("seed %d %s: marker-only process survived correction", seed, name)
					}
				}
			}
		}

		// Bounded memory: the corrected streaming run's peak residency must
		// stay below the materialized trace, proving the corrected
		// breakdown never required materializing it.
		eng := NewEngine(WithWorkers(1), WithMaxResidentBytes(8<<10), WithCorrection(cal))
		rep, err := eng.Analyze(context.Background(), FromDir(dir))
		if err != nil {
			t.Fatalf("seed %d: budgeted corrected stream: %v", seed, err)
		}
		if rep.Stats.PeakResidentEvents >= len(tr.Events) {
			t.Fatalf("seed %d: corrected streaming peak resident %d events, want below trace size %d",
				seed, rep.Stats.PeakResidentEvents, len(tr.Events))
		}
	}
}

// TestEngineCorrectedReportConsistency pins the Report surface across
// source kinds for one corrected Engine: both paths must agree that the
// results estimate the uninstrumented run (Meta.Config) and on how many
// events the source held (Stats.Events counts pre-correction events,
// markers included).
func TestEngineCorrectedReportConsistency(t *testing.T) {
	tr := randomWorkloadTrace(7)
	cal := syntheticCalibration(tr)
	dir := writeWorkloadTrace(t, tr, 2048)
	eng := NewEngine(WithWorkers(1), WithCorrection(cal))

	mat, err := eng.Analyze(context.Background(), FromTrace(tr))
	if err != nil {
		t.Fatal(err)
	}
	str, err := eng.Analyze(context.Background(), FromDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	if mat.Meta.Config.Any() || str.Meta.Config.Any() {
		t.Fatalf("corrected reports must carry uninstrumented Config: materialized=%v streaming=%v",
			mat.Meta.Config, str.Meta.Config)
	}
	if mat.Stats.Events != len(tr.Events) || str.Stats.Events != len(tr.Events) {
		t.Fatalf("Stats.Events diverges across sources: materialized=%d streaming=%d trace=%d",
			mat.Stats.Events, str.Stats.Events, len(tr.Events))
	}
}

// TestEngineCorrectionPrepassPartialStats cancels during the correction
// pre-pass and asserts the partial Report still says how far it got.
func TestEngineCorrectionPrepassPartialStats(t *testing.T) {
	tr := randomWorkloadTrace(7)
	cal := syntheticCalibration(tr)
	dir := writeWorkloadTrace(t, tr, 512)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	eng := NewEngine(WithCorrection(cal), WithProgress(func(p Progress) {
		if p.Stage == analysis.StageCorrect && p.ChunksDone >= 2 {
			cancel()
		}
	}))
	rep, err := eng.Analyze(ctx, FromDir(dir))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rep == nil || rep.Stats.ChunksDecoded < 2 || rep.Stats.Events == 0 {
		t.Fatalf("pre-pass cancellation lost partial stats: %+v", rep)
	}
	if rep.Stats.Chunks == 0 {
		t.Fatalf("partial report missing total chunk count: %+v", rep.Stats)
	}
}

// TestEngineWithProcessesCorrected composes the process filter with the
// correction stage: results must match the filtered slice of
// Correct-then-Analyze even though the pre-pass skips chunks (and markers)
// of unrequested processes.
func TestEngineWithProcessesCorrected(t *testing.T) {
	tr := randomWorkloadTrace(8)
	cal := syntheticCalibration(tr)
	dir := writeWorkloadTrace(t, tr, 1024)
	corrected := Correct(tr, cal)
	procs := corrected.ProcIDs()
	target := procs[len(procs)-1]
	want := renderResults(map[ProcID]*Result{target: overlap.Compute(corrected.ProcEvents(target))})

	for name, mk := range engineSources(t, tr, dir) {
		eng := NewEngine(WithWorkers(2), WithCorrection(cal), WithProcesses(target))
		rep, err := eng.Analyze(context.Background(), mk())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if renderResults(rep.Results) != want {
			t.Fatalf("%s: filtered corrected result diverges from Correct-then-Analyze", name)
		}
	}
}

// TestEngineWithProcesses asserts the process filter against per-process
// oracles on every source.
func TestEngineWithProcesses(t *testing.T) {
	tr := randomWorkloadTrace(5)
	dir := writeWorkloadTrace(t, tr, 2048)
	procs := tr.ProcIDs()
	target := procs[len(procs)-1]
	want := renderResults(map[ProcID]*Result{target: overlap.Compute(tr.ProcEvents(target))})

	for name, mk := range engineSources(t, tr, dir) {
		rep, err := NewEngine(WithWorkers(2), WithProcesses(target)).Analyze(context.Background(), mk())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(rep.Results) != 1 {
			t.Fatalf("%s: filtered analysis returned %d processes, want 1", name, len(rep.Results))
		}
		if renderResults(rep.Results) != want {
			t.Fatalf("%s: filtered result diverges from per-process oracle", name)
		}
	}
	// A process absent from the trace: no result row at all.
	if results := engineResults(tr, WithWorkers(1), WithProcesses(12345)); len(results) != 0 {
		t.Fatalf("filtering on an absent process = %+v, want no results", results)
	}
	// Filtered streaming skips chunks contributing only other processes.
	rep, err := NewEngine(WithProcesses(target)).Analyze(context.Background(), FromDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats.ChunksDecoded > rep.Stats.Chunks {
		t.Fatalf("decoded %d of %d chunks", rep.Stats.ChunksDecoded, rep.Stats.Chunks)
	}
}

// TestEngineProgressAndCancellation asserts the observability surface: the
// progress stream is monotone and stage-labelled (correction pre-pass, then
// analysis), and cancelling from a progress callback yields ctx.Err() plus
// a partial-stats report with no results.
func TestEngineProgressAndCancellation(t *testing.T) {
	tr := randomWorkloadTrace(6)
	cal := syntheticCalibration(tr)
	dir := writeWorkloadTrace(t, tr, 1024)

	var correctChunks, analyzeChunks int
	lastDone := map[string]int{}
	eng := NewEngine(WithWorkers(2), WithCorrection(cal), WithProgress(func(p Progress) {
		switch p.Stage {
		case analysis.StageCorrect:
			correctChunks++
		case analysis.StageAnalyze:
			analyzeChunks++
		default:
			t.Errorf("unknown progress stage %q", p.Stage)
		}
		if p.ChunksDone < lastDone[p.Stage] {
			t.Errorf("stage %s progress went backwards: %d after %d", p.Stage, p.ChunksDone, lastDone[p.Stage])
		}
		lastDone[p.Stage] = p.ChunksDone
	}))
	rep, err := eng.Analyze(context.Background(), FromDir(dir))
	if err != nil {
		t.Fatal(err)
	}
	if correctChunks == 0 || analyzeChunks == 0 {
		t.Fatalf("progress stages missing: correct=%d analyze=%d", correctChunks, analyzeChunks)
	}
	if correctChunks != rep.Stats.Chunks {
		t.Fatalf("correction pre-pass reported %d chunks, directory has %d", correctChunks, rep.Stats.Chunks)
	}

	// Cancel mid-analysis from the progress callback.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	eng = NewEngine(WithProgress(func(p Progress) {
		if p.ChunksDone >= 1 {
			cancel()
		}
	}))
	rep, err = eng.Analyze(ctx, FromDir(dir))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rep == nil {
		t.Fatal("cancelled Analyze returned a nil report; want partial stats")
	}
	if rep.Results != nil {
		t.Fatal("cancelled Analyze leaked partial results")
	}
	if rep.Stats.ChunksDecoded == 0 {
		t.Fatal("partial report carries no progress stats")
	}
}

// TestEngineErrors covers the degenerate inputs: nil source, and a
// directory that is not a trace.
func TestEngineErrors(t *testing.T) {
	if _, err := NewEngine().Analyze(context.Background(), nil); err == nil {
		t.Fatal("nil source: want error")
	}
	if _, err := NewEngine().Analyze(context.Background(), FromDir(t.TempDir())); err == nil {
		t.Fatal("empty dir: want error")
	}
	// A nil context defaults to Background rather than panicking.
	tr := randomWorkloadTrace(2)
	var nilCtx context.Context
	rep, err := NewEngine(WithWorkers(1)).Analyze(nilCtx, FromTrace(tr))
	if err != nil || len(rep.Results) == 0 {
		t.Fatalf("nil ctx: rep=%v err=%v", rep, err)
	}
}

// TestEngineIsReusable runs one Engine over many sources and checks results
// stay stable — the Engine holds no per-analysis state.
func TestEngineIsReusable(t *testing.T) {
	tr := randomWorkloadTrace(9)
	dir := writeWorkloadTrace(t, tr, 2048)
	want := renderResults(sequentialOracle(tr))
	eng := NewEngine(WithWorkers(4), WithMaxResidentBytes(8<<10))
	for i := 0; i < 3; i++ {
		for name, mk := range engineSources(t, tr, dir) {
			rep, err := eng.Analyze(context.Background(), mk())
			if err != nil {
				t.Fatalf("round %d %s: %v", i, name, err)
			}
			if renderResults(rep.Results) != want {
				t.Fatalf("round %d %s: result drifted across reuses", i, name)
			}
		}
	}
}

// TestCorrectorMatchesCorrect pins the factored per-event stage to the
// materializing Correct: applying MapEvent over every event reproduces
// Correct's output exactly, and MapSpan's conservative bounds contain every
// corrected extent.
func TestCorrectorMatchesCorrect(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		tr := randomWorkloadTrace(seed)
		cal := syntheticCalibration(tr)
		corr := calib.NewCorrector(tr, cal)

		want := Correct(tr, cal)
		got := &Trace{Meta: tr.Meta}
		got.Meta.Config = trace.Uninstrumented()
		for _, p := range tr.ProcIDs() {
			for _, e := range tr.ProcEvents(p) {
				ne := e
				if corr.MapEvent(&ne) {
					got.Events = append(got.Events, ne)
				}
			}
		}
		got.Sort()
		if len(got.Events) != len(want.Events) {
			t.Fatalf("seed %d: MapEvent kept %d events, Correct kept %d", seed, len(got.Events), len(want.Events))
		}
		for i := range got.Events {
			if got.Events[i] != want.Events[i] {
				t.Fatalf("seed %d: event %d diverges:\n map: %+v\n Correct: %+v",
					seed, i, got.Events[i], want.Events[i])
			}
		}

		// MapSpan bounds: per process, correct the whole-process span and
		// check every corrected event stays inside it.
		for _, p := range tr.ProcIDs() {
			events := tr.ProcEvents(p)
			sp := trace.ProcSpan{MinStart: events[0].Start, MaxEnd: events[0].End}
			for _, e := range events {
				if e.Start < sp.MinStart {
					sp.MinStart = e.Start
				}
				if e.End > sp.MaxEnd {
					sp.MaxEnd = e.End
				}
			}
			mapped := corr.MapSpan(p, sp)
			for _, e := range events {
				ne := e
				if !corr.MapEvent(&ne) {
					continue
				}
				if ne.Start < mapped.MinStart || ne.End > mapped.MaxEnd {
					t.Fatalf("seed %d proc %d: corrected event [%v,%v] escapes mapped span [%v,%v]",
						seed, p, ne.Start, ne.End, mapped.MinStart, mapped.MaxEnd)
				}
			}
		}
	}
}

// TestEngineSourceOpenContract documents that custom sources work: a Source
// implemented outside the trace package analyzes like FromTrace.
type customSource struct{ tr *Trace }

func (s customSource) Open() (*trace.Trace, *trace.Reader, error) { return s.tr, nil, nil }

func TestEngineSourceOpenContract(t *testing.T) {
	tr := randomWorkloadTrace(4)
	want := renderResults(sequentialOracle(tr))
	rep, err := NewEngine(WithWorkers(1)).Analyze(context.Background(), customSource{tr})
	if err != nil {
		t.Fatal(err)
	}
	if renderResults(rep.Results) != want {
		t.Fatal("custom source diverges from FromTrace")
	}
	var _ Source = customSource{} // the interface is open by design
}
